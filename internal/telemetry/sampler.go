package telemetry

import (
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// DefaultEpoch is the default sampling interval in CPU cycles.
const DefaultEpoch sim.Cycle = 100_000

// Epoch is one snapshot of the registry's flattened sample row.
type Epoch struct {
	At     sim.Cycle `json:"at"`
	Values []uint64  `json:"values"`
}

// Series is a deterministic time-series of registry snapshots: one row
// per epoch, columns fixed at sampling start. Gauge columns store the
// two's-complement bit pattern of their int64 value (see Kinds).
type Series struct {
	Interval sim.Cycle      `json:"interval"`
	Columns  []string       `json:"columns"`
	Kinds    []metrics.Kind `json:"-"`
	Epochs   []Epoch        `json:"epochs"`
}

// Sampler snapshots a metrics registry every Interval cycles by
// scheduling itself on the event queue. The sample event reads counters
// and mutates nothing, so it cannot change simulation results: the only
// interaction with the rest of the system is that its timestamp becomes
// an event horizon, which the inline fast path already treats as a yield
// point without changing per-operation outcomes.
//
// The sampler stops rescheduling when it finds the queue empty after its
// own dispatch — an empty queue means the workload has drained and
// another tick would keep q.Run() alive forever. Call Finish once the
// run completes to record the final row.
type Sampler struct {
	q        *sim.EventQueue
	reg      *metrics.Registry
	interval sim.Cycle
	series   Series
	fire     func(now sim.Cycle)
}

// NewSampler returns a sampler for reg on q. interval <= 0 selects
// DefaultEpoch. The registry must be fully populated before Start.
func NewSampler(q *sim.EventQueue, reg *metrics.Registry, interval sim.Cycle) *Sampler {
	if interval <= 0 {
		interval = DefaultEpoch
	}
	s := &Sampler{q: q, reg: reg, interval: interval}
	s.series.Interval = interval
	s.fire = func(now sim.Cycle) {
		s.sample(now)
		if s.q.Len() > 0 {
			s.q.Schedule(now+s.interval, s.fire)
		}
	}
	return s
}

// Start fixes the column set and schedules the first tick one interval
// from now.
func (s *Sampler) Start() {
	s.series.Columns = s.reg.SampleColumns()
	s.series.Kinds = s.reg.SampleKinds()
	s.q.Schedule(s.q.Now()+s.interval, s.fire)
}

// sample appends one epoch row.
func (s *Sampler) sample(at sim.Cycle) {
	row := make([]uint64, 0, len(s.series.Columns))
	s.series.Epochs = append(s.series.Epochs, Epoch{At: at, Values: s.reg.SampleInto(row)})
}

// Finish records the final row at end (unless the last tick already
// landed there) so the series always covers the whole run.
func (s *Sampler) Finish(end sim.Cycle) {
	if n := len(s.series.Epochs); n > 0 && s.series.Epochs[n-1].At == end {
		return
	}
	s.sample(end)
}

// Series returns the collected time-series.
func (s *Sampler) Series() *Series { return &s.series }
