package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"gsdram/internal/dram"
	"gsdram/internal/memctrl"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// TestSamplerEpochs: the sampler snapshots every interval while the
// queue has work, then stops rescheduling so q.Run() terminates.
func TestSamplerEpochs(t *testing.T) {
	var q sim.EventQueue
	reg := metrics.New()
	var work metrics.Counter
	reg.RegisterCounter("work", &work)

	// A workload that does one unit of work every 40 cycles until t=400.
	var tick func(now sim.Cycle)
	tick = func(now sim.Cycle) {
		work++
		if now < 400 {
			q.Schedule(now+40, tick)
		}
	}
	q.Schedule(40, tick)

	s := NewSampler(&q, reg, 100)
	s.Start()
	end := q.Run()
	s.Finish(end)

	series := s.Series()
	if !reflect.DeepEqual(series.Columns, []string{"work"}) {
		t.Fatalf("columns = %v", series.Columns)
	}
	// At t=200 and t=400 a sampler tick and a work tick coincide; the
	// sampler's reschedule carries the earlier seq, so it samples first
	// (work=4 at 200, work=9 at 400) and, seeing the coincident work
	// event still pending, reschedules once more — the series runs one
	// tick past the workload, catching the final value at 500.
	var ats []sim.Cycle
	var vals []uint64
	for _, ep := range series.Epochs {
		ats = append(ats, ep.At)
		vals = append(vals, ep.Values[0])
	}
	wantAts := []sim.Cycle{100, 200, 300, 400, 500}
	if !reflect.DeepEqual(ats, wantAts) {
		t.Fatalf("epoch times = %v, want %v", ats, wantAts)
	}
	wantVals := []uint64{2, 4, 7, 9, 10}
	if !reflect.DeepEqual(vals, wantVals) {
		t.Fatalf("epoch values = %v, want %v", vals, wantVals)
	}
	if end != 500 {
		t.Fatalf("end = %d", end)
	}
}

// TestSamplerFinishRecordsFinalRow: when the workload ends between
// ticks, Finish appends the final row at the true end time.
func TestSamplerFinishRecordsFinalRow(t *testing.T) {
	var q sim.EventQueue
	reg := metrics.New()
	var work metrics.Counter
	reg.RegisterCounter("work", &work)
	q.Schedule(250, func(sim.Cycle) { work = 7 })

	s := NewSampler(&q, reg, 100)
	s.Start()
	end := q.Run()
	s.Finish(end)

	eps := s.Series().Epochs
	// Ticks at 100, 200; at 200 the workload event (t=250) is still
	// pending so the sampler reschedules for 300 — but after the
	// workload runs at 250 the 300 tick is the only event left, fires,
	// finds the queue empty, and stops. Finish(300) dedupes.
	var ats []sim.Cycle
	for _, ep := range eps {
		ats = append(ats, ep.At)
	}
	if !reflect.DeepEqual(ats, []sim.Cycle{100, 200, 300}) {
		t.Fatalf("epoch times = %v", ats)
	}
	if last := eps[len(eps)-1]; last.Values[0] != 7 {
		t.Fatalf("final row = %v, want work=7", last.Values)
	}
}

// TestSamplerTerminates: a sampler on an otherwise-empty queue must not
// keep q.Run() alive.
func TestSamplerTerminates(t *testing.T) {
	var q sim.EventQueue
	s := NewSampler(&q, metrics.New(), 10)
	s.Start()
	if end := q.Run(); end != 10 {
		t.Fatalf("end = %d, want one tick at 10", end)
	}
	if got := len(s.Series().Epochs); got != 1 {
		t.Fatalf("epochs = %d, want 1", got)
	}
}

// TestPhaseRecorderCapacity mirrors trace.Recorder's drop semantics.
func TestPhaseRecorderCapacity(t *testing.T) {
	p := NewPhaseRecorder(2)
	hook := p.HookFor(3)
	hook(10, 20)
	hook(30, 40)
	hook(50, 60) // dropped
	if p.Seen() != 3 {
		t.Fatalf("seen = %d, want 3", p.Seen())
	}
	got := p.Phases()
	want := []Phase{{Core: 3, From: 10, To: 20}, {Core: 3, From: 30, To: 40}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("phases = %v, want %v", got, want)
	}
}

// testRun builds a small Run with every kind of content.
func testRun(t *testing.T) *Run {
	t.Helper()
	reg := metrics.New()
	var c metrics.Counter
	var g metrics.Gauge
	reg.RegisterCounter("memctrl.reads", &c)
	reg.RegisterGauge("memctrl.depth", &g)

	pr := NewPhaseRecorder(0)
	pr.HookFor(0)(100, 180)

	return &Run{
		Label:    "fig9/test",
		Registry: reg,
		Series: &Series{
			Interval: 100,
			Columns:  []string{"memctrl.reads", "memctrl.depth"},
			Kinds:    []metrics.Kind{metrics.KindCounter, metrics.KindGauge},
			Epochs: []Epoch{
				{At: 100, Values: []uint64{5, uint64(2)}},
				{At: 200, Values: []uint64{9, uint64(1)}},
			},
		},
		Cores:  []CoreSpan{{Core: 0, Start: 0, Finish: 200}},
		Phases: pr,
		Commands: []memctrl.CommandEvent{
			{At: 110, Channel: 0, Rank: 0, Bank: 2, Row: 7, Kind: dram.CmdACT},
			{At: 120, Channel: 0, Rank: 0, Bank: 2, Row: 7, Kind: dram.CmdRD, Pattern: 3},
			{At: 130, Channel: 0, Rank: 0, Bank: 1, Row: 4, Kind: dram.CmdACT},
		},
		CommandsSeen: 3,
		End:          200,
	}
}

// TestWriteTraceDecodes: the Perfetto output is valid JSON with the
// expected event population.
func TestWriteTraceDecodes(t *testing.T) {
	var buf bytes.Buffer
	m := Manifest{Tool: "gsbench", GoVersion: "go-test", Seed: 1, Workers: 2}
	if err := WriteTrace(&buf, m, []*Run{testRun(t)}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData   map[string]string `json:"otherData"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	if doc.OtherData["seed"] != "1" || doc.OtherData["workers"] != "2" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
	byPh := map[string]int{}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
		names[ev.Name] = true
	}
	// Metadata: process_name + process_sort_index + core thread pair +
	// two lane pairs = 8; slices: run + stall + 3 commands = 5;
	// counters: 2 epochs x 2 columns = 4.
	if byPh["M"] != 8 || byPh["X"] != 5 || byPh["C"] != 4 {
		t.Fatalf("event population = %v", byPh)
	}
	for _, want := range []string{"run", "dram stall", "ACT", "RD p3", "memctrl.reads", "memctrl.depth"} {
		if !names[want] {
			t.Fatalf("missing event %q (have %v)", want, names)
		}
	}
	// Patterned read carries its pattern arg.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "RD p3" && ev.Args["pattern"].(float64) != 3 {
			t.Fatalf("RD p3 args = %v", ev.Args)
		}
	}
}

// TestWriteTraceCounterDeltas: counter tracks emit per-epoch deltas,
// gauges instantaneous values.
func TestWriteTraceCounterDeltas(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Manifest{}, []*Run{testRun(t)}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   uint64         `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	got := map[string]map[uint64]float64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "C" {
			continue
		}
		if got[ev.Name] == nil {
			got[ev.Name] = map[uint64]float64{}
		}
		got[ev.Name][ev.Ts] = ev.Args["value"].(float64)
	}
	// Counter 5 → 9 becomes deltas 5, 4; gauge stays 2, 1.
	want := map[string]map[uint64]float64{
		"memctrl.reads": {100: 5, 200: 4},
		"memctrl.depth": {100: 2, 200: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("counter tracks = %v, want %v", got, want)
	}
}

// TestWriteSpanTrace: the generic span-track writer produces a valid
// trace with one thread per track and one "X" slice per span, zero
// durations widened to 1µs so they stay visible.
func TestWriteSpanTrace(t *testing.T) {
	var buf bytes.Buffer
	tracks := []SpanTrack{
		{Name: "point0", Spans: []TrackSpan{
			{Name: "queued", StartUS: 0, DurUS: 10},
			{Name: "running", StartUS: 10, DurUS: 500},
		}},
		{Name: "point1", Spans: []TrackSpan{
			{Name: "cache_probe", StartUS: 3, DurUS: 0},
		}},
	}
	if err := WriteSpanTrace(&buf, "sweep job-1", tracks); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("span trace does not decode: %v", err)
	}
	slices := map[string][]uint64{} // name → {tid, ts, dur}
	meta := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			slices[ev.Name] = []uint64{uint64(ev.Tid), ev.Ts, ev.Dur}
		}
	}
	// process_name + 2×(thread_name + thread_sort_index) = 5 meta events.
	if meta != 5 || len(slices) != 3 {
		t.Fatalf("event population: %d meta, %d slices", meta, len(slices))
	}
	if got := slices["running"]; got[0] != 1 || got[1] != 10 || got[2] != 500 {
		t.Fatalf("running slice = %v", got)
	}
	if got := slices["cache_probe"]; got[0] != 2 || got[2] != 1 {
		t.Fatalf("cache_probe slice = %v; want tid 2 with widened dur 1", got)
	}
}
