// Package telemetry turns the metrics registry and the simulator's
// observer hooks into run-level artefacts: an epoch time-series sampled
// on the event queue, core stall phases, captured DRAM command streams,
// and a Chrome trace_event / Perfetto JSON exporter over all of them.
//
// Everything here is off the hot path. The sampler fires one event per
// epoch; the phase recorder is invoked only when a core resumes from a
// DRAM-bound stall; the exporters run after the simulation has finished.
// None of it mutates simulated state, so enabling telemetry cannot
// perturb results — the determinism tests in bench pin this.
package telemetry

import (
	"gsdram/internal/flight"
	"gsdram/internal/latency"
	"gsdram/internal/memctrl"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// Phase is one core stall interval [From, To): the core issued a memory
// operation at From that missed all the way to DRAM and resumed at To.
type Phase struct {
	Core int       `json:"core"`
	From sim.Cycle `json:"from"`
	To   sim.Cycle `json:"to"`
}

// PhaseRecorder collects core stall phases up to a capacity
// (capacity <= 0 keeps everything), mirroring trace.Recorder's
// capacity-drop semantics: Seen counts every phase, Phases holds the
// first cap of them.
type PhaseRecorder struct {
	cap    int
	phases []Phase
	seen   uint64
}

// NewPhaseRecorder returns a recorder keeping at most capacity phases.
func NewPhaseRecorder(capacity int) *PhaseRecorder {
	return &PhaseRecorder{cap: capacity}
}

// HookFor returns a cpu.Core phase hook that tags phases with the core id.
func (p *PhaseRecorder) HookFor(core int) func(from, to sim.Cycle) {
	return func(from, to sim.Cycle) {
		p.seen++
		if p.cap > 0 && len(p.phases) >= p.cap {
			return
		}
		p.phases = append(p.phases, Phase{Core: core, From: from, To: to})
	}
}

// Phases returns the recorded phases in recording order.
func (p *PhaseRecorder) Phases() []Phase { return p.phases }

// Seen returns the total number of phases observed, including any
// dropped after the capacity was reached.
func (p *PhaseRecorder) Seen() uint64 { return p.seen }

// CoreSpan is one core's busy interval over the whole run.
type CoreSpan struct {
	Core   int       `json:"core"`
	Start  sim.Cycle `json:"start"`
	Finish sim.Cycle `json:"finish"`
}

// Run bundles everything telemetry captured for one simulated run. The
// bench layer fills it in; the exporters consume it.
type Run struct {
	// Label identifies the run (e.g. "fig9/gsdram/pure-q"); it is also
	// the Perfetto process name. Labels must be unique within a batch.
	Label string

	// Registry is the run's metrics registry (final values).
	Registry *metrics.Registry

	// Series is the epoch time-series the Sampler produced.
	Series *Series

	// Cores lists per-core busy spans; Phases the DRAM-stall intervals.
	Cores  []CoreSpan
	Phases *PhaseRecorder

	// Commands is the captured DRAM command stream (possibly truncated:
	// CommandsSeen counts every command issued).
	Commands     []memctrl.CommandEvent
	CommandsSeen uint64

	// Latency is the run's request-lifecycle attribution recorder (span
	// histograms, core-stall stage counters, bounded request traces). Nil
	// when the run was captured without one.
	Latency *latency.Recorder

	// Flight is the run's flight recorder (last-K microarchitectural
	// events per component). Nil unless the capture armed one.
	Flight *flight.Recorder

	// End is the cycle the run finished at.
	End sim.Cycle
}

// Manifest describes how a batch of runs was produced, for the
// machine-readable JSON output. Params carries the experiment knobs as
// strings so the encoding stays deterministic and diffable.
type Manifest struct {
	Tool      string            `json:"tool"`
	GoVersion string            `json:"go_version"`
	Seed      uint64            `json:"seed"`
	Workers   int               `json:"workers"`
	Epoch     uint64            `json:"epoch_cycles,omitempty"`
	Params    map[string]string `json:"params,omitempty"`
}
