package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"gsdram/internal/dram"
	"gsdram/internal/metrics"
)

// Trace layout: each Run becomes one Perfetto process (pid = index+1).
// Within a process, cores occupy tids [coreTidBase, …) with a "run"
// slice spanning the core's busy interval and nested "dram stall"
// slices; each (channel, rank, bank) command lane occupies a tid from
// dramTidBase upward; epoch counter tracks are process-scoped "C"
// events. Timestamps are simulated CPU cycles, not microseconds — load
// the file in Perfetto and read the time axis as cycles.
const (
	coreTidBase = 1
	dramTidBase = 1000
)

// traceEvent is one Chrome trace_event record. Only the fields a given
// phase type uses are populated; omitempty keeps the file compact.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceWriter streams a traceEvents array without holding it in memory.
type traceWriter struct {
	w     *bufio.Writer
	first bool
	err   error
	// flowID numbers flow-event pairs; ids must be unique trace-wide.
	flowID uint64
}

func (t *traceWriter) emit(ev traceEvent) {
	if t.err != nil {
		return
	}
	if !t.first {
		t.w.WriteByte(',')
	}
	t.first = false
	blob, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	_, t.err = t.w.Write(blob)
}

// WriteTrace writes a Chrome trace_event / Perfetto-loadable JSON
// document covering every run: DRAM command slices per bank lane, core
// busy/stall slices, and epoch counter tracks. The output is fully
// deterministic: runs in slice order, lanes sorted, maps avoided except
// where encoding/json sorts keys.
func WriteTrace(w io.Writer, m Manifest, runs []*Run) error {
	tw := &traceWriter{w: bufio.NewWriter(w), first: true}

	other, err := json.Marshal(map[string]string{
		"tool":       m.Tool,
		"go_version": m.GoVersion,
		"seed":       fmt.Sprint(m.Seed),
		"workers":    fmt.Sprint(m.Workers),
		"time_unit":  "cpu-cycles",
	})
	if err != nil {
		return err
	}
	io.WriteString(tw.w, `{"displayTimeUnit":"ns","otherData":`)
	tw.w.Write(other)
	io.WriteString(tw.w, `,"traceEvents":[`)

	for i, run := range runs {
		if run == nil {
			continue
		}
		writeRun(tw, i+1, i, run)
	}

	if tw.err != nil {
		return tw.err
	}
	io.WriteString(tw.w, "]}\n")
	return tw.w.Flush()
}

// TrackSpan is one closed interval on a span track, in microseconds on
// the track set's shared time base.
type TrackSpan struct {
	Name    string
	StartUS uint64
	DurUS   uint64
}

// SpanTrack is one named lane of non-overlapping (or Perfetto-nestable)
// spans — e.g. one sweep point's lifecycle.
type SpanTrack struct {
	Name  string
	Spans []TrackSpan
}

// WriteSpanTrace writes a Chrome trace_event / Perfetto-loadable JSON
// document with one process (named name) and one thread per track, each
// span an "X" slice in real microseconds. It is the generic counterpart
// of WriteTrace for wall-clock span data — the farm uses it to render a
// sweep's point-lifecycle spans (gsbench sweep -trace-out).
func WriteSpanTrace(w io.Writer, name string, tracks []SpanTrack) error {
	tw := &traceWriter{w: bufio.NewWriter(w), first: true}
	io.WriteString(tw.w, `{"displayTimeUnit":"ms","otherData":{"time_unit":"us"},"traceEvents":[`)
	const pid = 1
	tw.emit(traceEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": name}})
	for i, track := range tracks {
		tid := i + 1
		tw.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": track.Name}})
		tw.emit(traceEvent{Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"sort_index": tid}})
		for _, sp := range track.Spans {
			dur := sp.DurUS
			if dur == 0 {
				dur = 1 // zero-width slices vanish in the UI
			}
			tw.emit(traceEvent{Name: sp.Name, Ph: "X", Pid: pid, Tid: tid,
				Ts: sp.StartUS, Dur: dur})
		}
	}
	if tw.err != nil {
		return tw.err
	}
	io.WriteString(tw.w, "]}\n")
	return tw.w.Flush()
}

func writeRun(tw *traceWriter, pid, sortIndex int, run *Run) {
	meta := func(name string, tid int, args map[string]any) {
		tw.emit(traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args})
	}
	meta("process_name", 0, map[string]any{"name": run.Label})
	meta("process_sort_index", 0, map[string]any{"sort_index": sortIndex})

	// Core lanes: one "run" slice per core, stall slices nested inside.
	for _, cs := range run.Cores {
		tid := coreTidBase + cs.Core
		meta("thread_name", tid, map[string]any{"name": fmt.Sprintf("core%d", cs.Core)})
		meta("thread_sort_index", tid, map[string]any{"sort_index": tid})
		if cs.Finish > cs.Start {
			tw.emit(traceEvent{Name: "run", Ph: "X", Pid: pid, Tid: tid,
				Ts: uint64(cs.Start), Dur: uint64(cs.Finish - cs.Start)})
		}
	}
	if run.Phases != nil {
		for _, ph := range run.Phases.Phases() {
			tw.emit(traceEvent{Name: "dram stall", Ph: "X", Pid: pid, Tid: coreTidBase + ph.Core,
				Ts: uint64(ph.From), Dur: uint64(ph.To - ph.From)})
		}
	}

	lanes := writeCommandLanes(tw, pid, run)
	writeFlowEvents(tw, pid, run, lanes)
	writeCounterTracks(tw, pid, run.Series)
}

// writeFlowEvents draws one flow arrow per captured request lifecycle:
// from the stalled core's "dram stall" slice to the CAS command slice on
// the bank lane that produced the data the core was waiting for. Only
// blocking requests whose CAS landed inside the captured command stream
// get an arrow — a flow must terminate on an existing slice.
func writeFlowEvents(tw *traceWriter, pid int, run *Run, lanes map[laneKey]int) {
	if run.Latency == nil || len(lanes) == 0 {
		return
	}
	var lastCmd uint64
	for _, ev := range run.Commands {
		if uint64(ev.At) > lastCmd {
			lastCmd = uint64(ev.At)
		}
	}
	for _, tr := range run.Latency.Traces() {
		if !tr.Blocking || tr.CAS == 0 || tr.Coalesced {
			continue
		}
		tid, ok := lanes[laneKey{tr.Channel, tr.Rank, tr.Bank}]
		if !ok || uint64(tr.CAS) > lastCmd {
			// The command capture was truncated before this CAS; no slice
			// to bind the arrow to.
			continue
		}
		tw.flowID++
		// The stall slice starts at the op's issue slot (start+1).
		tw.emit(traceEvent{Name: "unblock", Ph: "s", Pid: pid, Tid: coreTidBase + tr.Core,
			Ts: uint64(tr.Start + 1), ID: tw.flowID})
		tw.emit(traceEvent{Name: "unblock", Ph: "f", BP: "e", Pid: pid, Tid: tid,
			Ts: uint64(tr.CAS), ID: tw.flowID})
	}
}

// laneKey orders DRAM command lanes by (channel, rank, bank).
type laneKey struct{ ch, rk, ba int }

func writeCommandLanes(tw *traceWriter, pid int, run *Run) map[laneKey]int {
	if len(run.Commands) == 0 {
		return nil
	}
	lanes := map[laneKey]int{}
	keys := []laneKey{}
	for _, ev := range run.Commands {
		k := laneKey{ev.Channel, ev.Rank, ev.Bank}
		if _, ok := lanes[k]; !ok {
			lanes[k] = 0
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ch != b.ch {
			return a.ch < b.ch
		}
		if a.rk != b.rk {
			return a.rk < b.rk
		}
		return a.ba < b.ba
	})
	for i, k := range keys {
		tid := dramTidBase + i
		lanes[k] = tid
		tw.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("ch%d/rk%d/ba%d", k.ch, k.rk, k.ba)}})
		tw.emit(traceEvent{Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"sort_index": tid}})
	}
	for _, ev := range run.Commands {
		tid := lanes[laneKey{ev.Channel, ev.Rank, ev.Bank}]
		name := ev.Kind.String()
		var args map[string]any
		switch ev.Kind {
		case dram.CmdACT:
			args = map[string]any{"row": ev.Row}
		case dram.CmdRD, dram.CmdWR:
			if ev.Pattern != 0 {
				name = fmt.Sprintf("%s p%d", name, ev.Pattern)
				args = map[string]any{"pattern": int(ev.Pattern)}
			}
		}
		tw.emit(traceEvent{Name: name, Ph: "X", Pid: pid, Tid: tid,
			Ts: uint64(ev.At), Dur: 1, Args: args})
	}
	return lanes
}

// writeCounterTracks emits one "C" event per epoch per column. Counter
// columns are emitted as deltas per epoch (rate tracks read better in
// Perfetto than ever-growing totals); gauge columns as their sampled
// instantaneous value.
func writeCounterTracks(tw *traceWriter, pid int, s *Series) {
	if s == nil || len(s.Epochs) == 0 {
		return
	}
	prev := make([]uint64, len(s.Columns))
	for _, ep := range s.Epochs {
		for c, name := range s.Columns {
			v := ep.Values[c]
			var val any
			if c < len(s.Kinds) && s.Kinds[c] == metrics.KindGauge {
				val = int64(v)
			} else {
				val = v - prev[c]
				prev[c] = v
			}
			tw.emit(traceEvent{Name: name, Ph: "C", Pid: pid,
				Ts: uint64(ep.At), Args: map[string]any{"value": val}})
		}
	}
}
