package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenSpanTracks is a fixed input exercising every branch of the span
// writer: multiple tracks, multiple spans per track, and a zero-duration
// span (widened to 1µs).
func goldenSpanTracks() []SpanTrack {
	return []SpanTrack{
		{Name: "point0", Spans: []TrackSpan{
			{Name: "queued", StartUS: 0, DurUS: 12},
			{Name: "running", StartUS: 12, DurUS: 640},
		}},
		{Name: "point1", Spans: []TrackSpan{
			{Name: "cache_probe", StartUS: 5, DurUS: 0},
			{Name: "running", StartUS: 6, DurUS: 88},
		}},
	}
}

// TestWriteSpanTraceGolden pins the exact serialized bytes of the
// Perfetto span trace against testdata/span_trace.golden.json, then
// independently decodes the golden to prove it is still a well-formed
// Chrome trace_event document. The byte comparison is the regression
// tripwire (field order, envelope, µs widening are all load-bearing for
// external viewers); the decode keeps the golden itself honest.
// Regenerate with: go test ./internal/telemetry -run SpanTraceGolden -update
func TestWriteSpanTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, "sweep job-1", goldenSpanTracks()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "span_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("span trace bytes drifted from golden\n got: %s\nwant: %s", buf.Bytes(), want)
	}

	// Decode the golden as a viewer would and check the envelope and the
	// slice population — not just that it round-trips as generic JSON.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			TimeUnit string `json:"time_unit"`
		} `json:"otherData"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Ts   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatalf("golden does not decode as trace_event JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || doc.OtherData.TimeUnit != "us" {
		t.Fatalf("envelope: displayTimeUnit=%q time_unit=%q", doc.DisplayTimeUnit, doc.OtherData.TimeUnit)
	}
	var procName string
	threadNames := map[int]string{}
	var slices, widened int
	for _, ev := range doc.TraceEvents {
		if ev.Pid != 1 {
			t.Fatalf("event %q on pid %d, want the single pid 1", ev.Name, ev.Pid)
		}
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procName, _ = ev.Args["name"].(string)
		case ev.Ph == "M" && ev.Name == "thread_name":
			threadNames[ev.Tid], _ = ev.Args["name"].(string)
		case ev.Ph == "X":
			slices++
			if ev.Dur == 0 {
				t.Fatalf("slice %q has zero duration; writer must widen to 1µs", ev.Name)
			}
			if ev.Name == "cache_probe" && ev.Dur == 1 {
				widened++
			}
		}
	}
	if procName != "sweep job-1" {
		t.Fatalf("process_name = %q", procName)
	}
	if threadNames[1] != "point0" || threadNames[2] != "point1" {
		t.Fatalf("thread names = %v, want tid1=point0 tid2=point1", threadNames)
	}
	if slices != 4 || widened != 1 {
		t.Fatalf("got %d slices (%d widened), want 4 slices with the zero-duration span widened", slices, widened)
	}
}
