// Package fastsim provides a lightweight, non-event-driven timing model
// for single-core, compute-dominated workloads (the GEMM evaluation of
// paper §5.2). It reuses the cache models and an open-row DRAM latency
// approximation, trading the event-driven controller's queueing fidelity
// for the speed needed to walk hundreds of millions of accesses.
//
// The pipelined in-order core retires one instruction per cycle; an L1 hit
// causes no stall, lower levels stall the core for their latency. This is
// the standard simple-core approximation for loop kernels whose loads are
// independent.
package fastsim

import (
	"gsdram/internal/addrmap"
	"gsdram/internal/cache"
	"gsdram/internal/dram"
	"gsdram/internal/gsdram"
)

// Config parameterises the model.
type Config struct {
	Spec       addrmap.Spec
	L1         cache.Config
	L2         cache.Config
	L2Latency  uint64 // stall cycles on an L1 miss / L2 hit
	Timing     dram.Timing
	ClockRatio int
	// ShuffleLatency is added to DRAM accesses of shuffled lines.
	ShuffleLatency uint64
}

// DefaultConfig matches Table 1 and the event-driven model's parameters.
func DefaultConfig() Config {
	return Config{
		Spec:           addrmap.Default,
		L1:             cache.L1Default(),
		L2:             cache.L2Default(),
		L2Latency:      18,
		Timing:         dram.DDR3_1600(),
		ClockRatio:     5,
		ShuffleLatency: 3,
	}
}

// Stats reports the model's activity.
type Stats struct {
	Cycles       uint64
	Instructions uint64
	L1Hits       uint64
	L1Misses     uint64
	L2Hits       uint64
	L2Misses     uint64
	RowHits      uint64
	RowMisses    uint64 // includes row conflicts
}

// Model is one single-core machine instance.
type Model struct {
	cfg Config
	l1  *cache.Cache
	l2  *cache.Cache

	// openRow[bank key] is the open row, -1 when the bank is closed. A
	// dense slice (channels × ranks × banks entries) keeps the open-row
	// check off the map hash path in the per-access loop.
	openRow []int

	// lineMask strips the intra-line offset (precomputed from L1
	// LineBytes for the hot Access path).
	lineMask addrmap.Addr

	// Precomputed DRAM latencies in CPU cycles.
	latRowHit      uint64
	latRowClosed   uint64
	latRowConflict uint64

	stats Stats
}

// New builds a model.
func New(cfg Config) (*Model, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	r := uint64(cfg.ClockRatio)
	t := cfg.Timing
	m := &Model{
		cfg:            cfg,
		l1:             l1,
		l2:             l2,
		openRow:        make([]int, cfg.Spec.Channels*cfg.Spec.Ranks*cfg.Spec.Banks),
		lineMask:       ^addrmap.Addr(cfg.L1.LineBytes - 1),
		latRowHit:      r * uint64(t.CL+t.TBL),
		latRowClosed:   r * uint64(t.TRCD+t.CL+t.TBL),
		latRowConflict: r * uint64(t.TRP+t.TRCD+t.CL+t.TBL),
	}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m, nil
}

// Stats returns a snapshot of the counters.
func (m *Model) Stats() Stats { return m.stats }

// Compute retires n ALU instructions.
func (m *Model) Compute(n int) {
	m.stats.Instructions += uint64(n)
	m.stats.Cycles += uint64(n)
}

// Access performs one load or store of the line containing addr with the
// given pattern ID. L1 hits retire in the pipeline (1 cycle); misses stall
// for the lower levels' latency.
func (m *Model) Access(addr addrmap.Addr, patt gsdram.Pattern, shuffled, write bool) {
	m.stats.Instructions++
	m.stats.Cycles++
	line := addr & m.lineMask
	if m.l1.Lookup(line, patt, write) {
		m.stats.L1Hits++
		return
	}
	m.stats.L1Misses++
	if m.l2.Lookup(line, patt, false) {
		m.stats.L2Hits++
		m.stats.Cycles += m.cfg.L2Latency
		m.fillL1(line, patt, write)
		return
	}
	m.stats.L2Misses++
	m.stats.Cycles += m.cfg.L2Latency + m.dramLatency(line)
	if shuffled {
		m.stats.Cycles += m.cfg.ShuffleLatency
	}
	if ev, has := m.l2.Fill(line, patt, false); has && ev.Dirty {
		// Dirty writeback: posted, no stall, but it occupies the bank.
		m.touchRow(ev.Addr)
	}
	m.fillL1(line, patt, write)
}

func (m *Model) fillL1(line addrmap.Addr, patt gsdram.Pattern, dirty bool) {
	if ev, has := m.l1.Fill(line, patt, dirty); has && ev.Dirty {
		m.l2.Fill(ev.Addr, ev.Pattern, true)
	}
}

// dramLatency models an open-row bank: hit, closed, or conflict latency.
func (m *Model) dramLatency(line addrmap.Addr) uint64 {
	loc, err := m.cfg.Spec.Decompose(line)
	if err != nil {
		return m.latRowConflict
	}
	key := (loc.Channel*m.cfg.Spec.Ranks+loc.Rank)*m.cfg.Spec.Banks + loc.Bank
	open := m.openRow[key]
	switch {
	case open == loc.Row:
		m.stats.RowHits++
		return m.latRowHit
	case open < 0:
		m.stats.RowMisses++
		m.openRow[key] = loc.Row
		return m.latRowClosed
	default:
		m.stats.RowMisses++
		m.openRow[key] = loc.Row
		return m.latRowConflict
	}
}

// touchRow updates the open-row state for background traffic (writebacks)
// without charging latency to the core.
func (m *Model) touchRow(line addrmap.Addr) {
	if loc, err := m.cfg.Spec.Decompose(line); err == nil {
		key := (loc.Channel*m.cfg.Spec.Ranks+loc.Rank)*m.cfg.Spec.Banks + loc.Bank
		m.openRow[key] = loc.Row
	}
}

// CacheStats returns (L1, L2) statistics.
func (m *Model) CacheStats() (cache.Stats, cache.Stats) {
	return m.l1.Stats(), m.l2.Stats()
}
