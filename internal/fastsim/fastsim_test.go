package fastsim

import (
	"testing"

	"gsdram/internal/addrmap"
)

func newModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func addr(bank, row, col int) addrmap.Addr {
	return addrmap.Default.Compose(addrmap.Loc{Bank: bank, Row: row, Col: col})
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Spec.Banks = 7
	if _, err := New(cfg); err == nil {
		t.Error("bad spec accepted")
	}
	cfg = DefaultConfig()
	cfg.L1.Ways = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad L1 accepted")
	}
	cfg = DefaultConfig()
	cfg.L2.LineBytes = 48
	if _, err := New(cfg); err == nil {
		t.Error("bad L2 accepted")
	}
}

func TestComputeCycles(t *testing.T) {
	m := newModel(t)
	m.Compute(100)
	s := m.Stats()
	if s.Cycles != 100 || s.Instructions != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestL1HitIsPipelined(t *testing.T) {
	m := newModel(t)
	a := addr(0, 1, 0)
	m.Access(a, 0, false, false) // cold miss
	before := m.Stats().Cycles
	m.Access(a, 0, false, false) // L1 hit
	if got := m.Stats().Cycles - before; got != 1 {
		t.Fatalf("L1 hit cost %d cycles, want 1 (pipelined)", got)
	}
}

func TestMissLatencyOrdering(t *testing.T) {
	m := newModel(t)
	// Cold miss to a closed bank.
	m.Access(addr(0, 1, 0), 0, false, false)
	cold := m.Stats().Cycles
	// Row-hit miss: same row, different line.
	m.Access(addr(0, 1, 5), 0, false, false)
	rowHit := m.Stats().Cycles - cold
	// Row-conflict miss: different row, same bank.
	m.Access(addr(0, 2, 0), 0, false, false)
	conflict := m.Stats().Cycles - cold - rowHit
	if !(rowHit < uint64(cold) && rowHit < conflict) {
		t.Fatalf("latencies cold=%d rowHit=%d conflict=%d; want rowHit smallest", cold, rowHit, conflict)
	}
	s := m.Stats()
	if s.RowHits != 1 || s.RowMisses != 2 {
		t.Fatalf("row stats = %+v", s)
	}
}

func TestL2HitLatency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 512 // tiny L1 so lines fall to L2
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Touch 64 lines (spilling L1), then re-touch the first: L2 hit.
	for i := 0; i < 64; i++ {
		m.Access(addr(0, 1, i%128), 0, false, false)
	}
	before := m.Stats().Cycles
	m.Access(addr(0, 1, 0), 0, false, false)
	got := m.Stats().Cycles - before
	if got != 1+cfg.L2Latency {
		t.Fatalf("L2 hit cost %d, want %d", got, 1+cfg.L2Latency)
	}
}

func TestShuffleLatencyOnlyOnDRAM(t *testing.T) {
	m := newModel(t)
	m.Access(addr(0, 1, 0), 7, true, false)
	cold := m.Stats().Cycles

	m2 := newModel(t)
	m2.Access(addr(0, 1, 0), 7, false, false)
	coldPlain := m2.Stats().Cycles
	if cold != coldPlain+3 {
		t.Fatalf("shuffled cold = %d, plain = %d, want +3", cold, coldPlain)
	}
	// A subsequent L1 hit has no shuffle cost.
	before := m.Stats().Cycles
	m.Access(addr(0, 1, 0), 7, true, false)
	if m.Stats().Cycles-before != 1 {
		t.Fatal("shuffle latency charged on L1 hit")
	}
}

func TestPatternTagsDistinct(t *testing.T) {
	m := newModel(t)
	a := addr(0, 1, 0)
	m.Access(a, 0, false, false)
	m.Access(a, 7, true, false)
	s := m.Stats()
	if s.L1Misses != 2 {
		t.Fatalf("misses = %d, want 2 (patterns are distinct lines)", s.L1Misses)
	}
}

func TestDirtyEvictionTouchesRow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1.SizeBytes = 512
	cfg.L2.SizeBytes = 1024
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Write many lines to force dirty L2 evictions; must not panic and
	// cycles must grow monotonically.
	var last uint64
	for i := 0; i < 512; i++ {
		m.Access(addr(i%8, i/8+1, i%128), 0, false, true)
		s := m.Stats()
		if s.Cycles < last {
			t.Fatal("cycles went backwards")
		}
		last = s.Cycles
	}
}

func TestCacheStatsExposed(t *testing.T) {
	m := newModel(t)
	m.Access(addr(0, 1, 0), 0, false, false)
	l1, l2 := m.CacheStats()
	if l1.Misses != 1 || l2.Misses != 1 {
		t.Fatalf("cache stats = %+v / %+v", l1, l2)
	}
}
