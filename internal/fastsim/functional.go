package fastsim

import (
	"gsdram/internal/cpu"
	"gsdram/internal/memsys"
)

// Functional executes instruction streams architecturally, with zero
// simulated time, against a *detailed* memory hierarchy: every memory op
// becomes a memsys.WarmAccess, so cache tags, LRU order, the pattern
// coherence invariants and the prefetcher/promotion tables keep evolving
// exactly as the detailed path would move them — while no events run and
// no cycles pass. It is the fast-forward engine of sampled simulation
// (internal/sample): between measurement windows the op stream flows
// through Exec instead of a cpu.Core.
//
// Instruction accounting matches cpu.Core exactly — a compute block of n
// cycles retires n instructions, every memory op retires one — so CPI
// extrapolation over the full instruction count is consistent whether an
// instruction was fast-forwarded or measured.
type Functional struct {
	mem    *memsys.System
	instrs uint64
	loads  uint64
	stores uint64
}

// NewFunctional builds a functional executor over a detailed hierarchy.
func NewFunctional(mem *memsys.System) *Functional {
	return &Functional{mem: mem}
}

// Exec retires one op of the given core's stream.
func (f *Functional) Exec(core int, op cpu.Op) {
	switch op.Kind {
	case cpu.OpCompute:
		f.instrs += uint64(op.Cycles)
	case cpu.OpLoad, cpu.OpStore:
		f.instrs++
		write := op.Kind == cpu.OpStore
		if write {
			f.stores++
		} else {
			f.loads++
		}
		f.mem.WarmAccess(memsys.Access{
			Core:       core,
			Addr:       op.Addr,
			Pattern:    op.Pattern,
			Write:      write,
			PC:         op.PC,
			Shuffled:   op.Shuffled,
			AltPattern: op.AltPattern,
		})
	case cpu.OpGatherV, cpu.OpScatterV:
		f.instrs++
		write := op.Kind == cpu.OpScatterV
		if write {
			f.stores++
		} else {
			f.loads++
		}
		f.mem.WarmAccessV(memsys.VAccess{
			Core:       core,
			Addrs:      op.Addrs,
			Write:      write,
			PC:         op.PC,
			Shuffled:   op.Shuffled,
			AltPattern: op.AltPattern,
		})
	}
}

// Instructions returns the retired-instruction count.
func (f *Functional) Instructions() uint64 { return f.instrs }

// Loads returns the retired load count.
func (f *Functional) Loads() uint64 { return f.loads }

// Stores returns the retired store count.
func (f *Functional) Stores() uint64 { return f.stores }
