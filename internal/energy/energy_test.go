package energy

import (
	"testing"

	"gsdram/internal/cache"
	"gsdram/internal/memctrl"
)

func baseActivity() Activity {
	return Activity{
		Runtime:      4_000_000, // 1 ms at 4 GHz
		FreqGHz:      4,
		Cores:        1,
		Instructions: 1_000_000,
		L1:           []cache.Stats{{Hits: 900_000, Misses: 100_000}},
		L2:           cache.Stats{Hits: 80_000, Misses: 20_000},
		Mem: memctrl.Stats{
			ReadsServed:  20_000,
			WritesServed: 5_000,
			ACTs:         10_000,
			Refreshes:    100,
			ActiveCycles: 2_000_000,
		},
	}
}

func TestEstimatePositiveComponents(t *testing.T) {
	r := Estimate(baseActivity(), DefaultDRAM(), DefaultCPU())
	if r.DRAMCommandMJ <= 0 || r.DRAMBackgroundMJ <= 0 || r.DRAMRefreshMJ <= 0 {
		t.Fatalf("DRAM components not positive: %+v", r)
	}
	if r.CPUDynamicMJ <= 0 || r.CPUStaticMJ <= 0 {
		t.Fatalf("CPU components not positive: %+v", r)
	}
	if r.TotalMJ() != r.DRAMMJ()+r.CPUMJ() {
		t.Fatal("total does not add up")
	}
}

func TestMoreDRAMTrafficMoreEnergy(t *testing.T) {
	a := baseActivity()
	r1 := Estimate(a, DefaultDRAM(), DefaultCPU())
	a.Mem.ReadsServed *= 8
	a.Mem.ACTs *= 8
	r2 := Estimate(a, DefaultDRAM(), DefaultCPU())
	if r2.DRAMCommandMJ <= r1.DRAMCommandMJ {
		t.Fatalf("8x traffic did not raise command energy: %v vs %v", r2.DRAMCommandMJ, r1.DRAMCommandMJ)
	}
}

func TestLongerRuntimeMoreStaticEnergy(t *testing.T) {
	a := baseActivity()
	r1 := Estimate(a, DefaultDRAM(), DefaultCPU())
	a.Runtime *= 4
	r2 := Estimate(a, DefaultDRAM(), DefaultCPU())
	if r2.CPUStaticMJ <= r1.CPUStaticMJ || r2.DRAMBackgroundMJ <= r1.DRAMBackgroundMJ {
		t.Fatalf("longer runtime did not raise static energy: %+v vs %+v", r2, r1)
	}
}

func TestActiveCyclesClampedToRuntime(t *testing.T) {
	a := baseActivity()
	a.Mem.ActiveCycles = uint64(a.Runtime) * 10 // bogus counter
	r := Estimate(a, DefaultDRAM(), DefaultCPU())
	// Background energy must not exceed full-active for the runtime.
	maxBG := float64(a.Runtime) / 4 * DefaultDRAM().PActiveW * 1e-6
	if r.DRAMBackgroundMJ > maxBG*1.0001 {
		t.Fatalf("background %v exceeds all-active bound %v", r.DRAMBackgroundMJ, maxBG)
	}
}

func TestZeroFreqDefaultsTo4GHz(t *testing.T) {
	a := baseActivity()
	a.FreqGHz = 0
	r := Estimate(a, DefaultDRAM(), DefaultCPU())
	a.FreqGHz = 4
	r2 := Estimate(a, DefaultDRAM(), DefaultCPU())
	if r != r2 {
		t.Fatalf("zero freq not defaulted: %+v vs %+v", r, r2)
	}
}

func TestMoreCoresMoreStatic(t *testing.T) {
	a := baseActivity()
	r1 := Estimate(a, DefaultDRAM(), DefaultCPU())
	a.Cores = 2
	r2 := Estimate(a, DefaultDRAM(), DefaultCPU())
	if r2.CPUStaticMJ <= r1.CPUStaticMJ {
		t.Fatal("second core did not raise static power")
	}
}

func TestDefaultsAreSane(t *testing.T) {
	dp := DefaultDRAM()
	if dp.EActPreNJ <= 0 || dp.ERefreshNJ < dp.EActPreNJ {
		t.Fatalf("DRAM defaults implausible: %+v", dp)
	}
	cp := DefaultCPU()
	if cp.EPerL2NJ <= cp.EPerL1NJ {
		t.Fatalf("L2 access should cost more than L1: %+v", cp)
	}
}
