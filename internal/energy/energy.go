// Package energy estimates processor and DRAM energy for a simulated run,
// substituting for the McPAT and DRAMPower tools the paper uses (§5.1):
//
//   - DRAM energy follows the DRAMPower methodology: per-command energies
//     derived from Micron DDR3-1600 IDD currents (ACT+PRE pairs, read and
//     write bursts, refresh) plus state-dependent background power
//     (active vs. precharged standby).
//   - Processor energy is activity-based: energy per retired instruction
//     and per cache access, plus static power integrated over runtime.
//
// Absolute values are datasheet-scale estimates; the paper's Figure 12
// claims are about *ratios* between layouts, which an activity-based model
// preserves.
package energy

import (
	"gsdram/internal/cache"
	"gsdram/internal/memctrl"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// DRAMParams holds per-command energies (nanojoules per rank-level
// command) and background power (watts per rank).
type DRAMParams struct {
	EActPreNJ  float64 // one ACT+PRE pair
	EReadNJ    float64 // one read burst (64 B)
	EWriteNJ   float64 // one write burst (64 B)
	ERefreshNJ float64 // one REF (all banks)
	PActiveW   float64 // background power, >= 1 bank open
	PIdleW     float64 // background power, all banks precharged
}

// DefaultDRAM returns parameters computed from Micron 4 Gb x8 DDR3-1600
// IDD values (VDD = 1.5 V, 8 chips per rank):
//
//	ACT+PRE: (IDD0-IDD3N) x tRC      = 50 mA x 48.75 ns x 1.5 V x 8 = 29 nJ
//	READ:    (IDD4R-IDD3N) x tBL     = 210 mA x 5 ns x 1.5 V x 8 + I/O = 16 nJ
//	WRITE:   (IDD4W-IDD3N) x tBL     = 140 mA x 5 ns x 1.5 V x 8 + ODT = 14 nJ
//	REF:     (IDD5-IDD2N) x tRFC     = 180 mA x 260 ns x 1.5 V x 8 = 562 nJ
//	active standby: IDD3N x VDD x 8  = 45 mA x 1.5 V x 8 = 540 mW
//	precharged:     IDD2N x VDD x 8  = 35 mA x 1.5 V x 8 = 420 mW
func DefaultDRAM() DRAMParams {
	return DRAMParams{
		EActPreNJ:  29,
		EReadNJ:    16,
		EWriteNJ:   14,
		ERefreshNJ: 562,
		PActiveW:   0.54,
		PIdleW:     0.42,
	}
}

// CPUParams holds the activity-based processor energy model.
type CPUParams struct {
	EPerInstrNJ float64 // dynamic energy per retired instruction
	EPerL1NJ    float64 // per L1 access
	EPerL2NJ    float64 // per L2 access
	PCoreW      float64 // static power per core
	PUncoreW    float64 // static power of the shared uncore (L2, NoC)
}

// DefaultCPU returns constants for a small in-order core at 4 GHz in a
// 32 nm-class process (McPAT-scale values).
func DefaultCPU() CPUParams {
	return CPUParams{
		EPerInstrNJ: 0.15,
		EPerL1NJ:    0.02,
		EPerL2NJ:    0.3,
		PCoreW:      0.5,
		PUncoreW:    0.8,
	}
}

// Activity collects the counters the model consumes.
type Activity struct {
	Runtime      sim.Cycle // total simulated CPU cycles
	FreqGHz      float64   // CPU clock, cycles per nanosecond
	Cores        int
	Instructions uint64
	L1           []cache.Stats
	L2           cache.Stats
	Mem          memctrl.Stats
}

// Report breaks down the estimated energy in millijoules.
type Report struct {
	DRAMCommandMJ    float64
	DRAMBackgroundMJ float64
	DRAMRefreshMJ    float64
	CPUDynamicMJ     float64
	CPUStaticMJ      float64
}

// DRAMMJ returns total DRAM energy.
func (r Report) DRAMMJ() float64 { return r.DRAMCommandMJ + r.DRAMBackgroundMJ + r.DRAMRefreshMJ }

// CPUMJ returns total processor energy.
func (r Report) CPUMJ() float64 { return r.CPUDynamicMJ + r.CPUStaticMJ }

// TotalMJ returns total system energy.
func (r Report) TotalMJ() float64 { return r.DRAMMJ() + r.CPUMJ() }

// RegisterLive registers gauges that re-estimate the run's energy from
// its current activity each time they are read — the epoch sampler
// turns them into energy-over-time tracks. activity must return the
// live counters (it is called at sample time, on the rig's own
// goroutine). Values are reported in microjoules so they fit the
// integer gauge contract. No-op on a nil registry.
func RegisterLive(r *metrics.Registry, activity func() Activity, dp DRAMParams, cp CPUParams) {
	if r == nil {
		return
	}
	uj := func(mj float64) int64 { return int64(mj * 1000) }
	r.RegisterGaugeFunc("energy.dram_uj", func() int64 { return uj(Estimate(activity(), dp, cp).DRAMMJ()) })
	r.RegisterGaugeFunc("energy.cpu_uj", func() int64 { return uj(Estimate(activity(), dp, cp).CPUMJ()) })
	r.RegisterGaugeFunc("energy.total_uj", func() int64 { return uj(Estimate(activity(), dp, cp).TotalMJ()) })
}

// Estimate computes the energy report for a run.
func Estimate(a Activity, dp DRAMParams, cp CPUParams) Report {
	var r Report
	if a.FreqGHz <= 0 {
		a.FreqGHz = 4
	}
	runtimeNS := float64(a.Runtime) / a.FreqGHz
	activeNS := float64(a.Mem.ActiveCycles) / a.FreqGHz
	if activeNS > runtimeNS {
		activeNS = runtimeNS
	}

	// DRAM: commands + refresh + state-dependent background.
	r.DRAMCommandMJ = (float64(a.Mem.ACTs)*dp.EActPreNJ +
		float64(a.Mem.ReadsServed)*dp.EReadNJ +
		float64(a.Mem.WritesServed)*dp.EWriteNJ) * 1e-6
	r.DRAMRefreshMJ = float64(a.Mem.Refreshes) * dp.ERefreshNJ * 1e-6
	r.DRAMBackgroundMJ = (activeNS*dp.PActiveW + (runtimeNS-activeNS)*dp.PIdleW) * 1e-6

	// Processor: activity + static.
	l1Acc := uint64(0)
	for _, s := range a.L1 {
		l1Acc += s.Hits + s.Misses
	}
	l2Acc := a.L2.Hits + a.L2.Misses
	r.CPUDynamicMJ = (float64(a.Instructions)*cp.EPerInstrNJ +
		float64(l1Acc)*cp.EPerL1NJ +
		float64(l2Acc)*cp.EPerL2NJ) * 1e-6
	r.CPUStaticMJ = runtimeNS * (cp.PCoreW*float64(a.Cores) + cp.PUncoreW) * 1e-6

	return r
}
