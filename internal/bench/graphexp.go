package bench

import (
	"fmt"

	"gsdram/internal/cpu"
	"gsdram/internal/graph"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/runner"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// GraphResult holds the §5.3 graph-processing comparison: the same graph
// kernel on AoS, SoA and GS-DRAM vertex layouts.
type GraphResult struct {
	Vertices int
	AvgDeg   int
	// PageRank and Update cycles, indexed by layout in the order of
	// graphLayouts.
	PageRank [3]uint64
	Update   [3]uint64
}

var graphLayouts = []graph.Layout{graph.AoS, graph.SoA, graph.GS}

// RunGraph runs two PageRank-style iterations (scan-heavy: favours SoA)
// and a random multi-field vertex-update batch (favours AoS) on each
// layout. GS-DRAM should track the better layout in both.
func RunGraph(vertices, avgDeg, updates int, seed uint64) (*GraphResult, error) {
	if vertices <= 0 || vertices%8 != 0 {
		return nil, fmt.Errorf("bench: vertices must be a positive multiple of 8")
	}
	res := &GraphResult{Vertices: vertices, AvgDeg: avgDeg}
	// One job per (layout, kernel): kernel 0 is PageRank, kernel 1 the
	// random update batch. Every job rebuilds the same seeded graph.
	err := (runner.Pool{}).Run(len(graphLayouts)*2, func(j int) error {
		li, kernel := j/2, j%2
		layout := graphLayouts[li]
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		g, err := graph.NewRandom(mach, layout, vertices, avgDeg, seed)
		if err != nil {
			return err
		}
		var s cpu.Stream
		var pr graph.PageRankResult
		var want uint64
		if kernel == 0 {
			want, err = g.ReferenceRankSum(2)
			if err != nil {
				return err
			}
			s, err = g.PageRankStream(2, &pr)
		} else {
			s, err = g.UpdateStream(updates, 3, seed+1)
		}
		if err != nil {
			return err
		}
		q := &sim.EventQueue{}
		mem, err := memsys.New(defaultConfig(1), q)
		if err != nil {
			return err
		}
		m := runStreams(q, mem, []cpu.Stream{s})
		if kernel == 0 {
			if pr.RankSum != want {
				return fmt.Errorf("bench: %v PageRank sum %d, want %d", layout, pr.RankSum, want)
			}
			res.PageRank[li] = m.Cycles
		} else {
			res.Update[li] = m.Cycles
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the graph comparison.
func (r *GraphResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Graph processing (Section 5.3): %d vertices, avg degree %d (Mcycles)", r.Vertices, r.AvgDeg),
		"vertex layout", "PageRank (2 iters)", "random 3-field updates")
	for li, layout := range graphLayouts {
		t.Add(layout.String(), stats.Mcycles(r.PageRank[li]), stats.Mcycles(r.Update[li]))
	}
	return t
}
