package bench

import (
	"testing"
)

// TestIndexedWorkloads runs each indexed experiment at quick scale and
// checks the structural invariants: non-zero cycles per variant,
// cross-variant checksum agreement (enforced inside the runners), the
// hashjoin build scan actually producing patterned bursts on the GS
// layout, and the unstructured workloads being fallback-dominated.
func TestIndexedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("indexed workloads are slow in -short mode")
	}
	opts := QuickOptions()

	hj, err := RunHashJoin(opts)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := RunSpMV(opts)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := RunPtrChase(4096, 8, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range []*IndexedResult{hj, sp, pc} {
		for i, v := range indexedVariants {
			if r.Cycles[i] == 0 {
				t.Errorf("%s/%s: zero cycles", r.Name, v)
			}
		}
		// Scalar never issues gatherv bursts; both gatherv variants must.
		if r.Bursts[0] != 0 {
			t.Errorf("%s scalar variant issued %d gatherv bursts", r.Name, r.Bursts[0])
		}
		if r.Bursts[1] == 0 || r.Bursts[2] == 0 {
			t.Errorf("%s gatherv variants issued no bursts: %v", r.Name, r.Bursts)
		}
		// The flat layout can never use pattern bursts.
		if r.Patterned[1] != 0 {
			t.Errorf("%s gatherv-flat produced %d patterned bursts", r.Name, r.Patterned[1])
		}
		if r.Checksum == 0 {
			t.Errorf("%s: zero checksum", r.Name)
		}
		if r.SpeedupVsFallback() <= 0 || r.SpeedupGSVsFlat() <= 0 {
			t.Errorf("%s: non-positive speedups %v %v", r.Name, r.SpeedupVsFallback(), r.SpeedupGSVsFlat())
		}
		if r.Table() == nil {
			t.Errorf("%s: nil table", r.Name)
		}
	}

	// The hash-join build scan is a stride-8 field walk: on the GS layout
	// most of its bursts must coalesce into in-DRAM pattern gathers.
	if hj.Patterned[2] == 0 {
		t.Error("hashjoin gatherv-gs produced no patterned bursts")
	}
	if hj.Patterned[2] <= hj.Fallback[2]/2 {
		t.Errorf("hashjoin gatherv-gs burst mix unexpectedly fallback-heavy: %d patterned, %d fallback",
			hj.Patterned[2], hj.Fallback[2])
	}
	// SpMV and ptrchase index vectors are unstructured: fallback dominates
	// even on the GS layout (the honest stride-only limit).
	for _, r := range []*IndexedResult{sp, pc} {
		if r.Patterned[2] > r.Fallback[2] {
			t.Errorf("%s gatherv-gs unexpectedly pattern-dominated: %d patterned, %d fallback",
				r.Name, r.Patterned[2], r.Fallback[2])
		}
	}
}

// TestIndexedWorkloadsDeterministicAcrossWorkers pins the acceptance
// invariant: results are bit-identical at any worker count.
func TestIndexedWorkloadsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("indexed workloads are slow in -short mode")
	}
	serial := QuickOptions()
	serial.Workers = 1
	parallel := QuickOptions()
	parallel.Workers = 8
	a, err := RunHashJoin(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHashJoin(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("hashjoin diverges across worker counts:\n1: %+v\n8: %+v", *a, *b)
	}
}

// TestIndexedTelemetryLabels checks every variant registers a labelled
// telemetry run so the farm and bench-gate can see each access path.
func TestIndexedTelemetryLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("indexed workloads are slow in -short mode")
	}
	opts := QuickOptions()
	opts.Capture = NewCapture(0)
	if _, err := RunSpMV(opts); err != nil {
		t.Fatal(err)
	}
	runs := opts.Capture.Drain()
	want := map[string]bool{"spmv/scalar": false, "spmv/gatherv-flat": false, "spmv/gatherv-gs": false}
	for _, r := range runs {
		if _, ok := want[r.Label]; ok {
			want[r.Label] = true
		}
	}
	for label, seen := range want {
		if !seen {
			t.Errorf("telemetry label %q not captured (got %d runs)", label, len(runs))
		}
	}
}
