package bench

import (
	"reflect"
	"testing"
)

// TestWorkersDeterminism pins the runner contract: every worker count
// produces identical results, because run seeds are derived from the job
// index alone and each job builds a private simulation rig. Workers=1 is
// the historical serial order, so this also proves the parallel harness
// did not change any experiment's numbers.
func TestWorkersDeterminism(t *testing.T) {
	serial := QuickOptions()
	serial.Workers = 1
	par := QuickOptions()
	par.Workers = 8

	s9, err := RunFig9(serial)
	if err != nil {
		t.Fatal(err)
	}
	p9, err := RunFig9(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s9.Runs, p9.Runs) {
		t.Errorf("Fig9 runs differ between Workers=1 and Workers=8")
	}
	if s9.Table().String() != p9.Table().String() {
		t.Errorf("Fig9 tables differ:\n-- serial --\n%s\n-- parallel --\n%s",
			s9.Table().String(), p9.Table().String())
	}

	s10, err := RunFig10(serial)
	if err != nil {
		t.Fatal(err)
	}
	p10, err := RunFig10(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s10.Runs, p10.Runs) {
		t.Errorf("Fig10 runs differ between Workers=1 and Workers=8")
	}
	if s10.Table().String() != p10.Table().String() {
		t.Errorf("Fig10 tables differ:\n-- serial --\n%s\n-- parallel --\n%s",
			s10.Table().String(), p10.Table().String())
	}
}
