package bench

import (
	"reflect"
	"testing"

	"gsdram/internal/latency"
	"gsdram/internal/telemetry"
)

// TestLatencyCaptureDoesNotPerturbResults: the latency attribution layer
// rides on the telemetry registry, so enabling it must leave the
// simulation results bit-identical to an uninstrumented run — and the
// capture itself must hold: every telemetered run carries a recorder
// whose span histograms conserve (per class, the span sums equal the
// total sum) and whose stall counters sum exactly to each core's
// mem_stall_cycles.
func TestLatencyCaptureDoesNotPerturbResults(t *testing.T) {
	opts := telemetryTestOpts(1)
	base, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	capture := NewCapture(0)
	opts.Capture = capture
	got, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := capture.Drain()
	if !reflect.DeepEqual(base.Runs, got.Runs) {
		t.Fatal("latency-instrumented Fig9 results differ from uninstrumented results")
	}
	if len(runs) == 0 {
		t.Fatal("no telemetry runs captured")
	}
	for _, r := range runs {
		rec := r.Latency
		if rec == nil {
			t.Fatalf("%s: telemetered run has no latency recorder", r.Label)
		}
		if rec.Seen() == 0 {
			t.Errorf("%s: latency recorder observed no requests", r.Label)
		}
		if len(rec.Traces()) == 0 {
			t.Errorf("%s: no request traces captured", r.Label)
		}
		// Span-histogram conservation per pattern class.
		for _, gather := range []bool{false, true} {
			total, spans := rec.Class(gather)
			var spanSum, spanCount uint64
			for _, h := range spans {
				spanSum += h.Sum()
				spanCount += h.Count()
			}
			if spanSum != total.Sum() {
				t.Errorf("%s: class gather=%v span sum %d != total sum %d",
					r.Label, gather, spanSum, total.Sum())
			}
			if spanCount != total.Count()*uint64(latency.NumSpans) {
				t.Errorf("%s: class gather=%v span count %d != %d×total count %d",
					r.Label, gather, spanCount, latency.NumSpans, total.Count())
			}
		}
		// Core-stall conservation against the core's own counter.
		export := r.Registry.Export()
		for core, cs := range r.Cores {
			var attributed uint64
			for st := latency.Stage(0); st < latency.NumStages; st++ {
				attributed += rec.StallCycles(cs.Core, st)
			}
			m, ok := export["core.0.mem_stall_cycles"]
			if core != 0 {
				t.Fatalf("%s: unexpected multi-core fig9 run", r.Label)
			}
			if !ok {
				t.Fatalf("%s: core.0.mem_stall_cycles not exported", r.Label)
			}
			if counted := m.(uint64); attributed != counted {
				t.Errorf("%s: attributed %d stall cycles, core counted %d",
					r.Label, attributed, counted)
			}
		}
	}
}

// TestLatencyCaptureIdenticalAcrossWorkers: the attribution capture must
// not depend on the worker count — traces, stall counters, and span
// histograms are all part of the registry export compared here.
func TestLatencyCaptureIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker replay in -short mode")
	}
	capture := func(workers int) []*telemetry.Run {
		c := NewCapture(0)
		opts := telemetryTestOpts(workers)
		opts.Capture = c
		if _, err := RunFig9(opts); err != nil {
			t.Fatal(err)
		}
		return c.Drain()
	}
	serial, parallel := capture(1), capture(4)
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Label != b.Label {
			t.Fatalf("label order differs: %q vs %q", a.Label, b.Label)
		}
		if !reflect.DeepEqual(a.Latency.Traces(), b.Latency.Traces()) {
			t.Errorf("%s: request traces differ across worker counts", a.Label)
		}
		if a.Latency.Seen() != b.Latency.Seen() {
			t.Errorf("%s: trace seen counts differ: %d vs %d",
				a.Label, a.Latency.Seen(), b.Latency.Seen())
		}
		if !reflect.DeepEqual(a.Registry.Export(), b.Registry.Export()) {
			t.Errorf("%s: exported metrics (incl. latency histograms) differ across worker counts", a.Label)
		}
	}
}
