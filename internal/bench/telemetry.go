package bench

import (
	"fmt"
	"sort"
	"sync"

	"gsdram/internal/cpu"
	"gsdram/internal/energy"
	"gsdram/internal/memctrl"
	"gsdram/internal/memsys"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
	"gsdram/internal/telemetry"
	"gsdram/internal/trace"
)

// Capacity caps for the per-run capture buffers: enough for the quick
// experiment scales to be captured whole, bounded so paper-scale runs
// cannot exhaust memory. Seen() counters record any truncation.
const (
	maxTraceCommands = 200_000
	maxTracePhases   = 100_000
	maxLatencyTraces = 50_000
)

// telem is the session-level telemetry switch, mirroring noInline: off
// by default, toggled between experiment batches, read by concurrent
// runs. When off, rigs are built with a nil registry and no observer, so
// the simulation pays nothing beyond the counter increments it always
// performed.
var telem struct {
	sync.Mutex
	enabled bool
	epoch   sim.Cycle
	// pending holds per-rig capture state between newRig (which wires
	// the memory system) and runStreams (which wires cores and runs),
	// keyed by the rig's event queue.
	pending map[*sim.EventQueue]*rigTelemetry
	runs    []*telemetry.Run
}

// rigTelemetry is one rig's capture state.
type rigTelemetry struct {
	label   string
	epoch   sim.Cycle
	reg     *metrics.Registry
	rec     *trace.Recorder
	phases  *telemetry.PhaseRecorder
	sampler *telemetry.Sampler
	// mem is the rig's memory system, captured in start so finish can
	// collect its latency recorder.
	mem *memsys.System
}

// SetTelemetry enables or disables telemetry capture for subsequently
// built experiment rigs and resets any collected runs. epochCycles is
// the sampling interval (0 selects telemetry.DefaultEpoch). Like
// SetNoInline, call it between experiment batches, not mid-run.
func SetTelemetry(enabled bool, epochCycles uint64) {
	telem.Lock()
	defer telem.Unlock()
	telem.enabled = enabled
	telem.epoch = sim.Cycle(epochCycles)
	telem.pending = nil
	telem.runs = nil
}

// DrainTelemetryRuns returns the runs captured since the last call (or
// since SetTelemetry), sorted by label so the result is deterministic
// regardless of worker scheduling, and clears the collection.
func DrainTelemetryRuns() []*telemetry.Run {
	telem.Lock()
	defer telem.Unlock()
	runs := telem.runs
	telem.runs = nil
	sort.Slice(runs, func(i, j int) bool { return runs[i].Label < runs[j].Label })
	return runs
}

// telemetryForRig creates capture state for a labelled rig and returns
// the registry and command observer to build the memory system with.
// Returns nils (build an untelemetered rig) when telemetry is off or
// the run has no label.
func telemetryForRig(label string, q *sim.EventQueue) (*metrics.Registry, func(memctrl.CommandEvent)) {
	if label == "" {
		return nil, nil
	}
	telem.Lock()
	defer telem.Unlock()
	if !telem.enabled {
		return nil, nil
	}
	rt := &rigTelemetry{
		label:  label,
		epoch:  telem.epoch,
		reg:    metrics.New(),
		rec:    trace.NewRecorder(maxTraceCommands),
		phases: telemetry.NewPhaseRecorder(maxTracePhases),
	}
	if telem.pending == nil {
		telem.pending = map[*sim.EventQueue]*rigTelemetry{}
	}
	telem.pending[q] = rt
	return rt.reg, rt.rec.Observe
}

// takeTelemetry claims (and removes) the pending capture state for q.
// Returns nil for untelemetered rigs; every method of a nil
// *rigTelemetry is a no-op, so run loops call them unconditionally.
func takeTelemetry(q *sim.EventQueue) *rigTelemetry {
	telem.Lock()
	defer telem.Unlock()
	rt := telem.pending[q]
	if rt != nil {
		delete(telem.pending, q)
	}
	return rt
}

// start completes registration — per-core counters and stall hooks
// (cores[i] must have core ID i), the live energy gauges — and starts
// the epoch sampler. Call after the cores are built, before q.Run().
func (rt *rigTelemetry) start(q *sim.EventQueue, mem *memsys.System, cores []*cpu.Core) {
	if rt == nil {
		return
	}
	rt.mem = mem
	for i, c := range cores {
		c.RegisterMetrics(rt.reg, fmt.Sprintf("core.%d", i))
		c.SetPhaseHook(rt.phases.HookFor(i))
	}
	energy.RegisterLive(rt.reg, func() energy.Activity {
		var instrs uint64
		for _, c := range cores {
			instrs += c.Stats().Instructions
		}
		l1, l2 := mem.CacheStats()
		return energy.Activity{
			Runtime:      q.Now(),
			FreqGHz:      4,
			Cores:        len(cores),
			Instructions: instrs,
			L1:           l1,
			L2:           l2,
			Mem:          mem.MemStats(),
		}
	}, energy.DefaultDRAM(), energy.DefaultCPU())
	rt.sampler = telemetry.NewSampler(q, rt.reg, rt.epoch)
	rt.sampler.Start()
}

// finish records the final epoch row, assembles the telemetry.Run, and
// adds it to the session collection. Call after q.Run() returns.
func (rt *rigTelemetry) finish(q *sim.EventQueue, cores []*cpu.Core) {
	if rt == nil {
		return
	}
	rt.sampler.Finish(q.Now())
	run := &telemetry.Run{
		Label:        rt.label,
		Registry:     rt.reg,
		Series:       rt.sampler.Series(),
		Phases:       rt.phases,
		Commands:     rt.rec.Events(),
		CommandsSeen: rt.rec.Seen(),
		Latency:      rt.mem.LatencyRecorder(),
		End:          q.Now(),
	}
	for i, c := range cores {
		st := c.Stats()
		run.Cores = append(run.Cores, telemetry.CoreSpan{Core: i, Start: st.StartCycle, Finish: st.FinishCycle})
	}
	telem.Lock()
	telem.runs = append(telem.runs, run)
	telem.Unlock()
}
