package bench

import (
	"fmt"
	"sort"
	"sync"

	"gsdram/internal/cpu"
	"gsdram/internal/energy"
	"gsdram/internal/flight"
	"gsdram/internal/memctrl"
	"gsdram/internal/memsys"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
	"gsdram/internal/telemetry"
	"gsdram/internal/trace"
)

// Capacity caps for the per-run capture buffers: enough for the quick
// experiment scales to be captured whole, bounded so paper-scale runs
// cannot exhaust memory. Seen() counters record any truncation.
const (
	maxTraceCommands = 200_000
	maxTracePhases   = 100_000
	maxLatencyTraces = 50_000
)

// Capture is one experiment batch's telemetry collection context: set it
// on Options.Capture and every labelled rig the batch builds records a
// per-run metrics registry, epoch time-series, DRAM command and stall
// traces into it. Captures are independent — concurrent batches (e.g.
// telemetered sweep points in one farm process) each drain exactly the
// runs they produced, with no cross-talk and no global serialization.
// A nil *Capture disables capture: rigs are built with a nil registry
// and no observer, so the simulation pays nothing beyond the counter
// increments it always performed.
type Capture struct {
	epoch sim.Cycle
	// flightDepth > 0 additionally arms a flight recorder on every rig
	// (last-K events per component; see internal/flight).
	flightDepth int

	mu      sync.Mutex
	runs    []*telemetry.Run
	flights []flight.LabeledRecorder
}

// NewCapture returns an empty capture context. epochCycles is the
// sampling interval of the epoch time-series (0 selects
// telemetry.DefaultEpoch).
func NewCapture(epochCycles uint64) *Capture {
	return &Capture{epoch: sim.Cycle(epochCycles)}
}

// SetFlightDepth arms flight recording on every rig this capture
// subsequently builds, keeping the last depth events per component
// (flight.DefaultDepth if depth < 0 is not allowed; 0 disarms). Call
// before the batch runs.
func (c *Capture) SetFlightDepth(depth int) { c.flightDepth = depth }

// FlightRecorders returns the flight recorders of every rig the capture
// armed so far, label-sorted, including rigs that have not finished —
// so a dump after a panic still shows the events leading up to it.
// Recorders belong to their rig's event loop; only read them once the
// batch has stopped running.
func (c *Capture) FlightRecorders() []flight.LabeledRecorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]flight.LabeledRecorder(nil), c.flights...)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// Drain returns the runs captured since the last call (or since
// NewCapture), sorted by label so the result is deterministic regardless
// of worker scheduling, and clears the collection.
func (c *Capture) Drain() []*telemetry.Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	runs := c.runs
	c.runs = nil
	sort.Slice(runs, func(i, j int) bool { return runs[i].Label < runs[j].Label })
	return runs
}

// add records one finished run.
func (c *Capture) add(run *telemetry.Run) {
	c.mu.Lock()
	c.runs = append(c.runs, run)
	c.mu.Unlock()
}

// pending holds per-rig capture state between newRig (which wires the
// memory system) and runStreams (which wires cores and runs), keyed by
// the rig's event queue. The map is process-global but purely a handoff
// within one rig's construction: entries live for microseconds and the
// critical sections are constant-time, so concurrent batches never
// serialize on it.
var pending struct {
	sync.Mutex
	m map[*sim.EventQueue]*rigTelemetry
}

// rigTelemetry is one rig's capture state.
type rigTelemetry struct {
	owner   *Capture
	label   string
	reg     *metrics.Registry
	rec     *trace.Recorder
	phases  *telemetry.PhaseRecorder
	sampler *telemetry.Sampler
	flight  *flight.Recorder
	// mem is the rig's memory system, captured in start so finish can
	// collect its latency recorder.
	mem *memsys.System
}

// telemetryForRig creates capture state for a labelled rig and returns
// the registry, command observer, and flight recorder to build the
// memory system with. Returns nils (build an untelemetered rig) when
// the batch has no capture context or the run has no label.
func telemetryForRig(c *Capture, label string, q *sim.EventQueue) (*metrics.Registry, func(memctrl.CommandEvent), *flight.Recorder) {
	if c == nil || label == "" {
		return nil, nil, nil
	}
	rt := &rigTelemetry{
		owner:  c,
		label:  label,
		reg:    metrics.New(),
		rec:    trace.NewRecorder(maxTraceCommands),
		phases: telemetry.NewPhaseRecorder(maxTracePhases),
	}
	if c.flightDepth > 0 {
		rt.flight = flight.New(c.flightDepth)
		c.mu.Lock()
		c.flights = append(c.flights, flight.LabeledRecorder{Label: label, Rec: rt.flight})
		c.mu.Unlock()
	}
	pending.Lock()
	if pending.m == nil {
		pending.m = map[*sim.EventQueue]*rigTelemetry{}
	}
	pending.m[q] = rt
	pending.Unlock()
	return rt.reg, rt.rec.Observe, rt.flight
}

// takeTelemetry claims (and removes) the pending capture state for q.
// Returns nil for untelemetered rigs; every method of a nil
// *rigTelemetry is a no-op, so run loops call them unconditionally.
func takeTelemetry(q *sim.EventQueue) *rigTelemetry {
	pending.Lock()
	defer pending.Unlock()
	rt := pending.m[q]
	if rt != nil {
		delete(pending.m, q)
	}
	return rt
}

// start completes registration — per-core counters and stall hooks
// (cores[i] must have core ID i), the live energy gauges — and starts
// the epoch sampler. Call after the cores are built, before q.Run().
func (rt *rigTelemetry) start(q *sim.EventQueue, mem *memsys.System, cores []*cpu.Core) {
	if rt == nil {
		return
	}
	rt.mem = mem
	for i, c := range cores {
		c.RegisterMetrics(rt.reg, fmt.Sprintf("core.%d", i))
		c.SetPhaseHook(rt.phases.HookFor(i))
		c.SetFlightRecorder(rt.flight)
	}
	energy.RegisterLive(rt.reg, func() energy.Activity {
		var instrs uint64
		for _, c := range cores {
			instrs += c.Stats().Instructions
		}
		l1, l2 := mem.CacheStats()
		return energy.Activity{
			Runtime:      q.Now(),
			FreqGHz:      4,
			Cores:        len(cores),
			Instructions: instrs,
			L1:           l1,
			L2:           l2,
			Mem:          mem.MemStats(),
		}
	}, energy.DefaultDRAM(), energy.DefaultCPU())
	rt.sampler = telemetry.NewSampler(q, rt.reg, rt.owner.epoch)
	rt.sampler.Start()
}

// finish records the final epoch row, assembles the telemetry.Run, and
// adds it to the owning capture. Call after q.Run() returns.
func (rt *rigTelemetry) finish(q *sim.EventQueue, cores []*cpu.Core) {
	if rt == nil {
		return
	}
	rt.sampler.Finish(q.Now())
	run := &telemetry.Run{
		Label:        rt.label,
		Registry:     rt.reg,
		Series:       rt.sampler.Series(),
		Phases:       rt.phases,
		Commands:     rt.rec.Events(),
		CommandsSeen: rt.rec.Seen(),
		Latency:      rt.mem.LatencyRecorder(),
		Flight:       rt.flight,
		End:          q.Now(),
	}
	for i, c := range cores {
		st := c.Stats()
		run.Cores = append(run.Cores, telemetry.CoreSpan{Core: i, Start: st.StartCycle, Finish: st.FinishCycle})
	}
	rt.owner.add(run)
}
