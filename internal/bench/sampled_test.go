package bench

import (
	"reflect"
	"testing"

	"gsdram/internal/imdb"
	"gsdram/internal/sample"
)

func quickSampleOptions() Options {
	o := QuickOptions()
	o.Sample = &sample.Config{Interval: 8192, Warmup: 512, Measure: 512, Seed: 7}
	return o
}

// TestSampledFig9Shape checks the sampled Figure 9 path: every run gets
// an estimate, the whole transaction stream is consumed (fast-forward is
// functional, so completion checks still hold), and the estimate stays
// within a loose band of the detailed run at quick scale.
func TestSampledFig9Shape(t *testing.T) {
	opts := quickSampleOptions()
	r, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	detailed, err := RunFig9(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	entries := r.SampledEntries()
	if len(entries) != len(layouts)*len(r.Mixes) {
		t.Fatalf("got %d sampled entries, want %d", len(entries), len(layouts)*len(r.Mixes))
	}
	for _, l := range layouts {
		for i := range r.Mixes {
			est := r.Sampled[l][i]
			if est == nil || est.Windows == 0 {
				t.Fatalf("%v/%v: missing estimate", l, r.Mixes[i])
			}
			if r.Runs[l][i].Cycles != est.Cycles {
				t.Errorf("%v/%v: RunMetrics.Cycles %d != estimate %d", l, r.Mixes[i], r.Runs[l][i].Cycles, est.Cycles)
			}
			det := float64(detailed.Runs[l][i].Cycles)
			relErr := (float64(est.Cycles) - det) / det
			if relErr < -0.25 || relErr > 0.25 {
				t.Errorf("%v/%v: sampled %d vs detailed %d (%.1f%% error)",
					l, r.Mixes[i], est.Cycles, detailed.Runs[l][i].Cycles, relErr*100)
			}
		}
	}
	// The GS-vs-column conclusion must survive sampling.
	if gs, col := r.AvgCycles(imdb.GSStore), r.AvgCycles(imdb.ColumnStore); gs >= col {
		t.Errorf("sampled fig9 lost the layout ordering: GS %v >= column %v", gs, col)
	}
}

// TestSampledFig9WorkersDeterminism pins the sampled runner contract:
// window placement seeds derive from the job index alone, so worker
// count cannot change any estimate.
func TestSampledFig9WorkersDeterminism(t *testing.T) {
	serial := quickSampleOptions()
	serial.Workers = 1
	par := quickSampleOptions()
	par.Workers = 8

	s, err := RunFig9(serial)
	if err != nil {
		t.Fatal(err)
	}
	p, err := RunFig9(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Runs, p.Runs) {
		t.Errorf("sampled Fig9 runs differ between Workers=1 and Workers=8")
	}
	if !reflect.DeepEqual(s.Sampled, p.Sampled) {
		t.Errorf("sampled Fig9 estimates differ between Workers=1 and Workers=8")
	}
}

// TestSampledFig10AndSweep smoke-tests the other sampled rigs: analytics
// sums must still be exact (data moves at stream generation), and every
// point must carry an estimate.
func TestSampledFig10AndSweep(t *testing.T) {
	opts := quickSampleOptions()
	// The analytics scan is shorter than the transaction run; tighten the
	// interval so every point still collects multiple windows.
	opts.Sample = &sample.Config{Interval: 4096, Warmup: 256, Measure: 256, Seed: 7}
	f10, err := RunFig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(f10.SampledEntries()); n != len(layouts)*len(f10.Points) {
		t.Fatalf("fig10: got %d sampled entries, want %d", n, len(layouts)*len(f10.Points))
	}
	for _, l := range layouts {
		for i := range f10.Points {
			if f10.Sampled[l][i] == nil || f10.Sampled[l][i].Windows == 0 {
				t.Fatalf("fig10 %v point %d: missing estimate", l, i)
			}
		}
	}

	sweep, err := RunPatternSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for p, est := range sweep.Sampled {
		if est == nil || est.Windows == 0 {
			t.Fatalf("pattern sweep p=%d: missing estimate", p)
		}
		if sweep.Cycles[p] != est.Cycles {
			t.Errorf("pattern sweep p=%d: Cycles %d != estimate %d", p, sweep.Cycles[p], est.Cycles)
		}
	}
}
