package bench

import (
	"gsdram/internal/cpu"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sample"
	"gsdram/internal/sim"
)

// SampledEntry pairs one run's label with its sampled estimate; the
// collected entries form the `sampled` section of the JSON output.
type SampledEntry struct {
	Run    string
	Result *sample.Result
}

// sampleConfigFor derives the per-run sampling config for job index j.
// The placement seed mixes the configured seed with the job index so
// every run draws independent window offsets, while remaining a pure
// function of j — worker count cannot perturb it. Checkpointing is
// stripped: batch runs never share the caller's checkpoint writer.
func sampleConfigFor(base sample.Config, j int) sample.Config {
	base.Seed ^= (uint64(j) + 1) * 0x9E3779B97F4A7C15
	base.CheckpointAfter = 0
	base.CheckpointW = nil
	return base
}

// runSampled executes one stream under interval sampling on a fresh rig
// and synthesizes RunMetrics comparable to runStreams: extrapolated
// cycles and energy from the estimate, memory-side counters from the
// detailed windows (functional fast-forward touches no counters).
// Sampled rigs are untelemetered, so there is no capture state to claim.
//
// Streams supporting a functional shadow overlay (imdb.TxnStream) are
// switched into it: the timing path is tag-only and checksums come out
// identical, so the scattered physical-layout writes — and the
// copy-on-write DRAM row copies they would trigger on the cloned
// template — are pure overhead for a sampled run.
func runSampled(sc sample.Config, mach *machine.Machine, q *sim.EventQueue, mem *memsys.System, s cpu.Stream) (RunMetrics, *sample.Result, error) {
	if sh, ok := s.(interface{ EnableShadow() }); ok {
		sh.EnableShadow()
	}
	est, err := sample.Run(sc, sample.Target{Mach: mach, Q: q, Mem: mem, Stream: s})
	if err != nil {
		return RunMetrics{}, nil, err
	}
	m := RunMetrics{
		Cycles: est.Cycles,
		CoreStats: []cpu.Stats{{
			Instructions: est.Instructions,
			FinishCycle:  sim.Cycle(est.Cycles),
			Finished:     true,
		}},
		Mem:    mem.Stats(),
		Ctrl:   mem.MemStats(),
		Energy: est.Energy,
	}
	return m, est, nil
}
