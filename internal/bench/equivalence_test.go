package bench

import (
	"reflect"
	"testing"
)

// TestInlineEquivalence pins the invariant of the event-horizon fast path
// (internal/cpu): a full Figure 9 run — cycles, core stats, cache and
// controller counters, energy — is bit-identical between inline execution
// and the pure event-driven reference (-noinline), at both the serial and
// a concurrent worker count.
func TestInlineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 9 comparison in -short mode")
	}
	defer SetNoInline(false)
	opts := QuickOptions()
	for _, workers := range []int{1, 8} {
		opts.Workers = workers

		SetNoInline(false)
		inline, err := RunFig9(opts)
		if err != nil {
			t.Fatalf("workers=%d inline: %v", workers, err)
		}
		SetNoInline(true)
		eventDriven, err := RunFig9(opts)
		if err != nil {
			t.Fatalf("workers=%d noinline: %v", workers, err)
		}

		if !reflect.DeepEqual(inline.Runs, eventDriven.Runs) {
			t.Errorf("workers=%d: inline and -noinline Figure 9 stats differ", workers)
			for _, l := range layouts {
				for i := range inline.Runs[l] {
					if !reflect.DeepEqual(inline.Runs[l][i], eventDriven.Runs[l][i]) {
						t.Logf("%v mix %v:\n inline   %+v\n noinline %+v",
							l, inline.Mixes[i], inline.Runs[l][i], eventDriven.Runs[l][i])
					}
				}
			}
		}
	}
}
