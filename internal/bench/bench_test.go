package bench

import (
	"strings"
	"testing"

	"gsdram/internal/gsdram"
	"gsdram/internal/imdb"
)

func TestTable1Renders(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"DDR3-1600", "GS-DRAM(8,3,3)", "FR-FCFS", "32 KB", "2 MB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig7Renders(t *testing.T) {
	out := Fig7(gsdram.GS422, 4).String()
	if !strings.Contains(out, "[0 4 8 12]") {
		t.Errorf("Figure 7 missing pattern-3 stride-4 gather:\n%s", out)
	}
	if !strings.Contains(out, "[0 2 4 6]") {
		t.Errorf("Figure 7 missing pattern-1 stride-2 gather:\n%s", out)
	}
}

// TestFig9Shape runs the transaction experiment at reduced scale and
// checks the paper's claims: GS-DRAM ~= Row Store, and Column Store
// substantially slower (3x on average in the paper).
func TestFig9Shape(t *testing.T) {
	opts := QuickOptions()
	r, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	row := r.AvgCycles(imdb.RowStore)
	col := r.AvgCycles(imdb.ColumnStore)
	gs := r.AvgCycles(imdb.GSStore)
	if gs > 1.25*row {
		t.Errorf("GS-DRAM (%.0f) should match Row Store (%.0f) for transactions", gs, row)
	}
	if col < 1.8*gs {
		t.Errorf("Column Store (%.0f) should be much slower than GS-DRAM (%.0f)", col, gs)
	}
	if got := r.Table().String(); !strings.Contains(got, "1-0-1") {
		t.Errorf("table missing mix label:\n%s", got)
	}
}

// TestFig10Shape runs the analytics experiment at reduced scale and
// checks: GS-DRAM ~= Column Store, Row Store substantially slower (2x in
// the paper), and prefetching helps everyone.
func TestFig10Shape(t *testing.T) {
	opts := QuickOptions()
	r, err := RunFig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, pf := range []bool{false, true} {
		row := r.AvgCycles(imdb.RowStore, pf)
		col := r.AvgCycles(imdb.ColumnStore, pf)
		gs := r.AvgCycles(imdb.GSStore, pf)
		if gs > 1.25*col {
			t.Errorf("prefetch=%v: GS-DRAM (%.0f) should match Column Store (%.0f)", pf, gs, col)
		}
		if row < 1.5*gs {
			t.Errorf("prefetch=%v: Row Store (%.0f) should be much slower than GS-DRAM (%.0f)", pf, row, gs)
		}
	}
	for _, l := range []imdb.Layout{imdb.RowStore, imdb.ColumnStore, imdb.GSStore} {
		if r.AvgCycles(l, true) >= r.AvgCycles(l, false) {
			t.Errorf("%v: prefetching did not help (%.0f vs %.0f)", l, r.AvgCycles(l, true), r.AvgCycles(l, false))
		}
	}
}

// TestFig11Shape checks the HTAP claims: GS-DRAM analytics ~= Column
// Store, and GS-DRAM transaction throughput at least Row Store's.
func TestFig11Shape(t *testing.T) {
	// HTAP needs a table larger than the L2: the paper's effect is
	// FR-FCFS bandwidth contention, which a cache-resident table hides.
	opts := QuickOptions()
	opts.Tuples = 65536
	r, err := RunFig11(opts)
	if err != nil {
		t.Fatal(err)
	}
	for pi := 0; pi < 2; pi++ {
		gsA := r.AnalyticsCycles[imdb.GSStore][pi]
		colA := r.AnalyticsCycles[imdb.ColumnStore][pi]
		rowA := r.AnalyticsCycles[imdb.RowStore][pi]
		if float64(gsA) > 1.3*float64(colA) {
			t.Errorf("prefetch=%d: GS analytics %d vs column %d", pi, gsA, colA)
		}
		if rowA < gsA {
			t.Errorf("prefetch=%d: row-store analytics %d beat GS %d", pi, rowA, gsA)
		}
		gsT := r.TxnThroughput[imdb.GSStore][pi]
		rowT := r.TxnThroughput[imdb.RowStore][pi]
		colT := r.TxnThroughput[imdb.ColumnStore][pi]
		// GS-DRAM must stay within a whisker of Row Store's throughput
		// without prefetching and clearly beat it with prefetching (the
		// paper's headline: the prefetcher turns the row-store analytics
		// thread into a bandwidth hog, while GS-DRAM touches 8x fewer
		// lines per DRAM row).
		if pi == 0 && gsT < 0.85*rowT {
			t.Errorf("prefetch=off: GS throughput %.0f well below row store %.0f", gsT, rowT)
		}
		if pi == 1 && gsT < 1.5*rowT {
			t.Errorf("prefetch=on: GS throughput %.0f does not clearly beat row store %.0f", gsT, rowT)
		}
		if gsT < colT {
			t.Errorf("prefetch=%d: GS throughput %.0f below column store %.0f", pi, gsT, colT)
		}
	}
	if out := r.AnalyticsTable().String(); !strings.Contains(out, "GS-DRAM") {
		t.Error("analytics table malformed")
	}
	if out := r.ThroughputTable().String(); !strings.Contains(out, "GS-DRAM") {
		t.Error("throughput table malformed")
	}
}

// TestFig12Shape checks the energy summary: GS-DRAM transactions energy
// ~= Row Store and well below Column Store; analytics energy ~= Column
// Store and well below Row Store.
func TestFig12Shape(t *testing.T) {
	opts := QuickOptions()
	r, err := RunFig12(opts)
	if err != nil {
		t.Fatal(err)
	}
	gsT := r.Fig9.AvgEnergy(imdb.GSStore)
	rowT := r.Fig9.AvgEnergy(imdb.RowStore)
	colT := r.Fig9.AvgEnergy(imdb.ColumnStore)
	if gsT > 1.25*rowT {
		t.Errorf("transactions energy: GS %.3f vs row %.3f", gsT, rowT)
	}
	if colT < 1.5*gsT {
		t.Errorf("transactions energy: column %.3f should exceed GS %.3f clearly", colT, gsT)
	}
	gsA := r.Fig10.AvgEnergy(imdb.GSStore, true)
	rowA := r.Fig10.AvgEnergy(imdb.RowStore, true)
	colA := r.Fig10.AvgEnergy(imdb.ColumnStore, true)
	if gsA > 1.25*colA {
		t.Errorf("analytics energy: GS %.3f vs column %.3f", gsA, colA)
	}
	if rowA < 1.5*gsA {
		t.Errorf("analytics energy: row %.3f should exceed GS %.3f clearly", rowA, gsA)
	}
	if out := r.PerfTable().String(); !strings.Contains(out, "Transactions") {
		t.Error("perf table malformed")
	}
	if out := r.EnergyTable().String(); !strings.Contains(out, "Analytics") {
		t.Error("energy table malformed")
	}
}

// TestFig13Shape checks the GEMM claims at small scale.
func TestFig13Shape(t *testing.T) {
	opts := QuickOptions()
	r, err := RunFig13(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range opts.GemmSizes {
		rs := r.Results[n]
		naive := rs[0].Stats.Cycles
		gather := rs[1].Stats.Cycles
		gs := rs[3].Stats.Cycles
		if gather >= naive {
			t.Errorf("n=%d: tiled (%d) not faster than naive (%d)", n, gather, naive)
		}
		if gs >= gather {
			t.Errorf("n=%d: GS (%d) not faster than SW-gather tiled (%d)", n, gs, gather)
		}
	}
	if out := r.Table().String(); !strings.Contains(out, "GS vs best tiled") {
		t.Error("fig13 table malformed")
	}
}

func TestKVStoreBench(t *testing.T) {
	r, err := RunKVStore(256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScanLines[1] >= r.ScanLines[0] {
		t.Errorf("GS scan fetched %d lines, plain %d; want fewer", r.ScanLines[1], r.ScanLines[0])
	}
	if !strings.Contains(r.Table().String(), "patt 1") {
		t.Error("kv table malformed")
	}
	if _, err := RunKVStore(5, 1); err == nil {
		t.Error("bad pair count accepted")
	}
}

func TestAblationShuffleTable(t *testing.T) {
	out := AblationShuffle(gsdram.GS844).String()
	// Stride 8 under simple mapping needs 8 READs; shuffled needs 1.
	found := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "8" {
			if fields[1] != "8" || fields[2] != "1" {
				t.Errorf("stride-8 row wrong: %q", line)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("stride-8 row missing:\n%s", out)
	}
	// Non-power-of-2 strides are listed as not one-READ gatherable.
	if !strings.Contains(out, "non-pow-2") || !strings.Contains(out, "no (Section 3.1)") {
		t.Errorf("non-power-of-2 rows missing:\n%s", out)
	}
}

func TestOptionsDefaults(t *testing.T) {
	d := DefaultOptions()
	if d.Tuples <= 0 || d.Txns <= 0 || len(d.GemmSizes) == 0 {
		t.Fatalf("defaults unusable: %+v", d)
	}
	q := QuickOptions()
	if q.Tuples >= d.Tuples {
		t.Fatal("quick options not smaller than defaults")
	}
}
