package bench

import (
	"fmt"

	"gsdram/internal/cpu"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/pixels"
	"gsdram/internal/runner"
	"gsdram/internal/sample"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// ImpulseResult compares GS-DRAM against the Impulse/DGMS class of
// related work (paper §7): gather at the memory controller from ordinary
// line reads. Cache-side behaviour is identical; the DRAM side is not.
type ImpulseResult struct {
	Opts Options
	// Indexed: 0 = GS-DRAM (in-DRAM gather), 1 = controller gather.
	Cycles    [2]uint64
	LineReads [2]uint64
	EnergyMJ  [2]float64
}

// RunImpulse runs the prefetched 1-column analytics scan under both
// gather implementations.
func RunImpulse(opts Options) (*ImpulseResult, error) {
	res := &ImpulseResult{Opts: opts}
	modes := []memsys.GatherMode{memsys.GatherInDRAM, memsys.GatherAtController}
	err := opts.pool().Run(len(modes), func(i int) error {
		db, q, mem, err := impulseRig(opts, modes[i])
		if err != nil {
			return err
		}
		var ar imdb.AnalyticsResult
		s, err := db.AnalyticsStream([]int{0}, &ar)
		if err != nil {
			return err
		}
		m := runStreams(q, mem, []cpu.Stream{s})
		checkSums(&ar, opts.Tuples, []int{0})
		res.Cycles[i] = m.Cycles
		res.LineReads[i] = m.Ctrl.ReadsServed
		res.EnergyMJ[i] = m.Energy.TotalMJ()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func impulseRig(opts Options, mode memsys.GatherMode) (*imdb.DB, *sim.EventQueue, *memsys.System, error) {
	_, db, _, _, err := newRig(runConfig{layout: imdb.GSStore, tuples: opts.Tuples, cores: 1, prefetch: true})
	if err != nil {
		return nil, nil, nil, err
	}
	// Rebuild the memory system with the requested gather mode (newRig
	// builds the default one).
	q := &sim.EventQueue{}
	cfg := defaultConfig(1)
	cfg.EnablePrefetch = true
	cfg.Gather = mode
	mem, err := memsys.New(cfg, q)
	if err != nil {
		return nil, nil, nil, err
	}
	return db, q, mem, nil
}

// Table renders the related-work comparison.
func (r *ImpulseResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Gather placement (Section 7 related work): prefetched 1-column scan, %d tuples", r.Opts.Tuples),
		"mechanism", "cycles (M)", "DRAM line reads", "energy (mJ)")
	labels := []string{"GS-DRAM (in-DRAM gather)", "controller gather (Impulse-like)"}
	for i, l := range labels {
		t.Add(l, stats.Mcycles(r.Cycles[i]), fmt.Sprint(r.LineReads[i]),
			fmt.Sprintf("%.2f", r.EnergyMJ[i]))
	}
	return t
}

// PatternSweepResult is the §3.5 parameter-space study: analytics cost as
// a function of available pattern bits.
type PatternSweepResult struct {
	Opts Options
	// Indexed by pattern bits 0..3.
	Cycles    [4]uint64
	LineReads [4]uint64
	// Sampled holds the per-point estimates when the sweep ran under
	// interval sampling (Options.Sample); all nil otherwise.
	Sampled [4]*sample.Result
}

// RunPatternSweep runs the 1-column scan on the GS layout with 0..3
// pattern bits: stride-2^p gathers fetch 8/2^p lines per 8 tuples, so
// each extra pattern bit halves the fetch count.
func RunPatternSweep(opts Options) (*PatternSweepResult, error) {
	res := &PatternSweepResult{Opts: opts}
	err := opts.pool().Run(4, func(p int) error {
		label := fmt.Sprintf("pattbits/p%d", p)
		if opts.Sample != nil {
			label = ""
		}
		mach, db, q, mem, err := newRig(runConfig{layout: imdb.GSStore, tuples: opts.Tuples, cores: 1, prefetch: true,
			label: label, capture: opts.Capture})
		if err != nil {
			return err
		}
		var ar imdb.AnalyticsResult
		s, err := db.AnalyticsStreamPatternBits([]int{0}, p, &ar)
		if err != nil {
			return err
		}
		var m RunMetrics
		if opts.Sample != nil {
			m, res.Sampled[p], err = runSampled(sampleConfigFor(*opts.Sample, p), mach, q, mem, s)
			if err != nil {
				return fmt.Errorf("bench: pattern sweep p=%d sampled: %w", p, err)
			}
		} else {
			m = runStreams(q, mem, []cpu.Stream{s})
		}
		checkSums(&ar, opts.Tuples, []int{0})
		res.Cycles[p] = m.Cycles
		res.LineReads[p] = m.Ctrl.ReadsServed
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SampledEntries flattens the sampled estimates in sweep order; empty
// when the sweep ran in full detail.
func (r *PatternSweepResult) SampledEntries() []SampledEntry {
	var es []SampledEntry
	for p, est := range r.Sampled {
		if est != nil {
			es = append(es, SampledEntry{Run: fmt.Sprintf("pattbits/p%d", p), Result: est})
		}
	}
	return es
}

// Table renders the pattern-bit sweep.
func (r *PatternSweepResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Pattern-bit sweep (Section 3.5): prefetched 1-column scan, %d tuples", r.Opts.Tuples),
		"pattern bits", "widest stride", "cycles (M)", "DRAM line reads")
	for p := 0; p <= 3; p++ {
		t.Add(fmt.Sprint(p), fmt.Sprint(1<<p), stats.Mcycles(r.Cycles[p]), fmt.Sprint(r.LineReads[p]))
	}
	return t
}

// StoreBufferResult compares transaction latency with blocking stores
// against an 8-entry store buffer, per layout. The column store issues
// one store-miss per written field, so it benefits the most; GS-DRAM and
// the row store hit the already-fetched tuple line and benefit little —
// the layout conclusion is robust to this core microarchitecture choice.
type StoreBufferResult struct {
	Opts Options
	// Cycles[layout][0] = blocking stores, [1] = 8-entry store buffer.
	Cycles map[imdb.Layout][2]uint64
}

// RunStoreBuffer runs a write-heavy transaction mix under both store
// models.
func RunStoreBuffer(opts Options) (*StoreBufferResult, error) {
	res := &StoreBufferResult{Opts: opts, Cycles: map[imdb.Layout][2]uint64{}}
	mix := imdb.TxnMix{RO: 1, WO: 3}
	sbCaps := []int{0, 8}
	runs := make([]uint64, len(layouts)*2)
	err := opts.pool().Run(len(runs), func(j int) error {
		layout, sbCap := layouts[j/2], sbCaps[j%2]
		_, db, q, mem, err := newRig(runConfig{layout: layout, tuples: opts.Tuples, cores: 1,
			label: fmt.Sprintf("storebuf/%v/sb%d", layout, sbCap), capture: opts.Capture})
		if err != nil {
			return err
		}
		s, err := db.TransactionStream(mix, opts.Txns, opts.Seed, nil)
		if err != nil {
			return err
		}
		m := runStreamsSB(q, mem, []cpu.Stream{s}, sbCap)
		runs[j] = m.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li, layout := range layouts {
		res.Cycles[layout] = [2]uint64{runs[li*2], runs[li*2+1]}
	}
	return res, nil
}

// Table renders the store-buffer ablation.
func (r *StoreBufferResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Store-buffer ablation: 1-read/3-write transactions, %d txns, %d tuples (Mcycles)", r.Opts.Txns, r.Opts.Tuples),
		"layout", "blocking stores", "8-entry store buffer", "speedup")
	for _, l := range layouts {
		c := r.Cycles[l]
		t.Add(l.String(), stats.Mcycles(c[0]), stats.Mcycles(c[1]), stats.Ratio(float64(c[0]), float64(c[1])))
	}
	return t
}

// PixelsResult holds the §5.3 graphics comparison: channel histogram and
// random shading on plain vs GS images.
type PixelsResult struct {
	N int
	// HistCycles / HistLines indexed: 0 = plain, 1 = GS.
	HistCycles [2]uint64
	HistLines  [2]uint64
	// ShadeCycles for a batch of random per-pixel shades.
	ShadeCycles [2]uint64
}

// RunPixels runs the graphics workload: a full-image channel histogram
// (favours gathers) and a batch of random 3-channel shades (favours
// whole records, which both layouts have).
func RunPixels(n, shades int, seed uint64) (*PixelsResult, error) {
	if n <= 0 || n%8 != 0 {
		return nil, fmt.Errorf("bench: pixel count must be a positive multiple of 8")
	}
	res := &PixelsResult{N: n}
	// Both layouts fill the image from the same re-seeded rng, so they see
	// identical pixel data and shade lists.
	err := (runner.Pool{}).Run(2, func(i int) error {
		gs := i == 1
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		img, err := pixels.New(mach, n, gs)
		if err != nil {
			return err
		}
		rng := sim.NewRand(seed)
		for p := 0; p < n; p++ {
			for c := 0; c < pixels.NumChannels; c++ {
				if err := img.Set(p, c, rng.Uint64()%4096); err != nil {
					return err
				}
			}
		}

		// Histogram.
		{
			q := &sim.EventQueue{}
			mem, err := memsys.New(defaultConfig(1), q)
			if err != nil {
				return err
			}
			s, err := img.HistogramStream(pixels.ChanR, nil)
			if err != nil {
				return err
			}
			m := runStreams(q, mem, []cpu.Stream{s})
			res.HistCycles[i] = m.Cycles
			res.HistLines[i] = m.Ctrl.ReadsServed
		}
		// Shading.
		{
			q := &sim.EventQueue{}
			mem, err := memsys.New(defaultConfig(1), q)
			if err != nil {
				return err
			}
			list := make([]int, shades)
			for j := range list {
				list[j] = rng.Intn(n)
			}
			s, err := img.ShadeStream(list)
			if err != nil {
				return err
			}
			m := runStreams(q, mem, []cpu.Stream{s})
			res.ShadeCycles[i] = m.Cycles
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the graphics comparison.
func (r *PixelsResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Graphics (Section 5.3): %d pixels, 8 channels", r.N),
		"layout", "histogram cycles (M)", "histogram line fetches", "shade cycles (M)")
	labels := []string{"plain", "GS-DRAM (patt 7 channels)"}
	for i, l := range labels {
		t.Add(l, stats.Mcycles(r.HistCycles[i]), fmt.Sprint(r.HistLines[i]), stats.Mcycles(r.ShadeCycles[i]))
	}
	return t
}
