package bench

import (
	"reflect"
	"testing"

	"gsdram/internal/telemetry"
)

// telemetryTestOpts is a small, fast Fig9 configuration.
func telemetryTestOpts(workers int) Options {
	opts := QuickOptions()
	opts.Tuples = 4096
	opts.Txns = 200
	opts.Workers = workers
	return opts
}

// TestTelemetryDoesNotPerturbResults: enabling telemetry must leave the
// simulation results deeply equal to a telemetry-free run — the capture
// layer observes, never mutates.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	opts := telemetryTestOpts(1)
	base, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	capture := NewCapture(0)
	opts.Capture = capture
	got, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := capture.Drain()
	if !reflect.DeepEqual(base.Runs, got.Runs) {
		t.Fatal("telemetry-enabled Fig9 results differ from telemetry-free results")
	}

	// And the capture itself must be substantive: one run per (layout,
	// mix) with a well-populated registry and a non-empty time-series.
	if want := 3 * len(base.Mixes); len(runs) != want {
		t.Fatalf("captured %d runs, want %d", len(runs), want)
	}
	for _, r := range runs {
		if r.Registry.Len() < 20 {
			t.Errorf("%s: %d metrics, want >= 20", r.Label, r.Registry.Len())
		}
		if len(r.Series.Epochs) == 0 {
			t.Errorf("%s: empty epoch series", r.Label)
		}
		if r.CommandsSeen == 0 || len(r.Commands) == 0 {
			t.Errorf("%s: no DRAM commands captured", r.Label)
		}
		if len(r.Cores) != 1 || r.Cores[0].Finish == 0 {
			t.Errorf("%s: bad core spans %+v", r.Label, r.Cores)
		}
	}
}

// TestTelemetrySeriesIdenticalAcrossWorkers: the epoch time-series (and
// everything else captured) must not depend on the worker count.
func TestTelemetrySeriesIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker replay in -short mode")
	}
	capture := func(workers int) []*telemetry.Run {
		c := NewCapture(0)
		opts := telemetryTestOpts(workers)
		opts.Capture = c
		if _, err := RunFig9(opts); err != nil {
			t.Fatal(err)
		}
		return c.Drain()
	}
	serial, parallel := capture(1), capture(4)
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Label != b.Label {
			t.Fatalf("label order differs: %q vs %q", a.Label, b.Label)
		}
		if !reflect.DeepEqual(a.Series, b.Series) {
			t.Errorf("%s: epoch series differs across worker counts", a.Label)
		}
		if !reflect.DeepEqual(a.Commands, b.Commands) || a.CommandsSeen != b.CommandsSeen {
			t.Errorf("%s: DRAM command capture differs across worker counts", a.Label)
		}
		if !reflect.DeepEqual(a.Phases.Phases(), b.Phases.Phases()) {
			t.Errorf("%s: stall phases differ across worker counts", a.Label)
		}
		if !reflect.DeepEqual(a.Registry.Export(), b.Registry.Export()) {
			t.Errorf("%s: final metrics differ across worker counts", a.Label)
		}
	}
}

// TestTelemetryDisabledCapturesNothing: the default state (nil
// Options.Capture) stays silent, and an unused capture stays empty.
func TestTelemetryDisabledCapturesNothing(t *testing.T) {
	unused := NewCapture(0)
	if _, err := RunFig9(telemetryTestOpts(1)); err != nil {
		t.Fatal(err)
	}
	if runs := unused.Drain(); len(runs) != 0 {
		t.Fatalf("captured %d runs into a capture no batch was given", len(runs))
	}
}

// TestCapturesAreIndependent: two concurrent batches with their own
// captures each drain exactly their own runs — the per-rig capture path
// has no session-global state to cross-talk through.
func TestCapturesAreIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two fig9 batches")
	}
	type result struct {
		runs []*telemetry.Run
		err  error
	}
	run := func(seed uint64, ch chan<- result) {
		c := NewCapture(0)
		opts := telemetryTestOpts(2)
		opts.Seed = seed
		opts.Capture = c
		_, err := RunFig9(opts)
		ch <- result{c.Drain(), err}
	}
	a, b := make(chan result, 1), make(chan result, 1)
	go run(1, a)
	go run(2, b)
	ra, rb := <-a, <-b
	if ra.err != nil || rb.err != nil {
		t.Fatalf("concurrent batches failed: %v / %v", ra.err, rb.err)
	}
	if len(ra.runs) == 0 || len(ra.runs) != len(rb.runs) {
		t.Fatalf("run counts: %d vs %d (want equal, non-zero)", len(ra.runs), len(rb.runs))
	}
	// Labels are per-batch identical (same experiment); the captured
	// registries must belong to distinct rigs.
	for i := range ra.runs {
		if ra.runs[i].Label != rb.runs[i].Label {
			t.Fatalf("label order differs: %q vs %q", ra.runs[i].Label, rb.runs[i].Label)
		}
		if ra.runs[i].Registry == rb.runs[i].Registry {
			t.Fatalf("%s: both captures hold the same registry", ra.runs[i].Label)
		}
	}
}
