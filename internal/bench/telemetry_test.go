package bench

import (
	"reflect"
	"testing"

	"gsdram/internal/telemetry"
)

// telemetryTestOpts is a small, fast Fig9 configuration.
func telemetryTestOpts(workers int) Options {
	opts := QuickOptions()
	opts.Tuples = 4096
	opts.Txns = 200
	opts.Workers = workers
	return opts
}

// TestTelemetryDoesNotPerturbResults: enabling telemetry must leave the
// simulation results deeply equal to a telemetry-free run — the capture
// layer observes, never mutates.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	opts := telemetryTestOpts(1)
	SetTelemetry(false, 0)
	base, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	SetTelemetry(true, 0)
	defer SetTelemetry(false, 0)
	got, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	runs := DrainTelemetryRuns()
	if !reflect.DeepEqual(base.Runs, got.Runs) {
		t.Fatal("telemetry-enabled Fig9 results differ from telemetry-free results")
	}

	// And the capture itself must be substantive: one run per (layout,
	// mix) with a well-populated registry and a non-empty time-series.
	if want := 3 * len(base.Mixes); len(runs) != want {
		t.Fatalf("captured %d runs, want %d", len(runs), want)
	}
	for _, r := range runs {
		if r.Registry.Len() < 20 {
			t.Errorf("%s: %d metrics, want >= 20", r.Label, r.Registry.Len())
		}
		if len(r.Series.Epochs) == 0 {
			t.Errorf("%s: empty epoch series", r.Label)
		}
		if r.CommandsSeen == 0 || len(r.Commands) == 0 {
			t.Errorf("%s: no DRAM commands captured", r.Label)
		}
		if len(r.Cores) != 1 || r.Cores[0].Finish == 0 {
			t.Errorf("%s: bad core spans %+v", r.Label, r.Cores)
		}
	}
}

// TestTelemetrySeriesIdenticalAcrossWorkers: the epoch time-series (and
// everything else captured) must not depend on the worker count.
func TestTelemetrySeriesIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker replay in -short mode")
	}
	capture := func(workers int) []*telemetry.Run {
		SetTelemetry(true, 0)
		if _, err := RunFig9(telemetryTestOpts(workers)); err != nil {
			t.Fatal(err)
		}
		return DrainTelemetryRuns()
	}
	defer SetTelemetry(false, 0)
	serial, parallel := capture(1), capture(4)
	if len(serial) != len(parallel) {
		t.Fatalf("run counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if a.Label != b.Label {
			t.Fatalf("label order differs: %q vs %q", a.Label, b.Label)
		}
		if !reflect.DeepEqual(a.Series, b.Series) {
			t.Errorf("%s: epoch series differs across worker counts", a.Label)
		}
		if !reflect.DeepEqual(a.Commands, b.Commands) || a.CommandsSeen != b.CommandsSeen {
			t.Errorf("%s: DRAM command capture differs across worker counts", a.Label)
		}
		if !reflect.DeepEqual(a.Phases.Phases(), b.Phases.Phases()) {
			t.Errorf("%s: stall phases differ across worker counts", a.Label)
		}
		if !reflect.DeepEqual(a.Registry.Export(), b.Registry.Export()) {
			t.Errorf("%s: final metrics differ across worker counts", a.Label)
		}
	}
}

// TestTelemetryDisabledCapturesNothing: the default state stays silent.
func TestTelemetryDisabledCapturesNothing(t *testing.T) {
	SetTelemetry(false, 0)
	if _, err := RunFig9(telemetryTestOpts(1)); err != nil {
		t.Fatal(err)
	}
	if runs := DrainTelemetryRuns(); len(runs) != 0 {
		t.Fatalf("captured %d runs with telemetry disabled", len(runs))
	}
}
