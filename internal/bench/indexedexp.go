package bench

import (
	"fmt"

	"gsdram/internal/cpu"
	"gsdram/internal/gemm"
	"gsdram/internal/graph"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// This file holds the indexed gather/scatter workloads: three kernels
// whose hot loops access memory through explicit index vectors rather
// than strides, each compared across three access paths:
//
//	scalar       — plain layout, one cached load per element: the
//	               non-coalesced fallback the speedups are measured
//	               against (each element pays full per-access latency
//	               through a blocking in-order core);
//	gatherv-flat — plain layout, gatherv ops: the coalescer batches
//	               elements into per-line default bursts, winning via
//	               bank-level parallelism;
//	gatherv-gs   — shuffled (pattmalloc) layout, gatherv ops: stride-
//	               structured index vectors additionally coalesce into
//	               in-DRAM pattern gathers (8 elements per burst).
//
// The gap between gatherv-gs and gatherv-flat measures exactly what the
// paper's stride-only mechanism contributes on indexed code: large on
// the hash-join build scan (a disguised stride-8 walk), near zero on
// SpMV and pointer chasing (unstructured vectors), which bounds the
// stride-only claims honestly.

// indexedVariants names the access paths, in run order; telemetry labels
// are "<experiment>/<variant>".
var indexedVariants = [3]string{"scalar", "gatherv-flat", "gatherv-gs"}

// IndexedResult reports one indexed workload across the three access
// paths.
type IndexedResult struct {
	Name  string
	Scale string // human-readable problem size
	// Per-variant metrics, indexed in indexedVariants order.
	Cycles    [3]uint64
	DRAMReads [3]uint64
	Bursts    [3]uint64 // gatherv DRAM bursts
	Patterned [3]uint64 // bursts served by in-DRAM pattern gathers
	Fallback  [3]uint64 // default-pattern fallback bursts
	Checksum  uint64    // functional outcome, identical across variants
}

// SpeedupVsFallback is the headline number: gatherv on the GS layout
// versus per-element scalar loads on the plain layout.
func (r *IndexedResult) SpeedupVsFallback() float64 {
	if r.Cycles[2] == 0 {
		return 0
	}
	return float64(r.Cycles[0]) / float64(r.Cycles[2])
}

// SpeedupGSVsFlat isolates the in-DRAM pattern contribution: gatherv on
// the GS layout versus gatherv on the plain layout.
func (r *IndexedResult) SpeedupGSVsFlat() float64 {
	if r.Cycles[2] == 0 {
		return 0
	}
	return float64(r.Cycles[1]) / float64(r.Cycles[2])
}

// Table renders the comparison.
func (r *IndexedResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Indexed %s (%s): access-path comparison", r.Name, r.Scale),
		"access path", "Mcycles", "DRAM reads", "gv bursts", "patterned", "fallback")
	for i, v := range indexedVariants {
		t.Add(v, stats.Mcycles(r.Cycles[i]),
			fmt.Sprintf("%d", r.DRAMReads[i]),
			fmt.Sprintf("%d", r.Bursts[i]),
			fmt.Sprintf("%d", r.Patterned[i]),
			fmt.Sprintf("%d", r.Fallback[i]))
	}
	t.Add("speedup vs fallback", stats.Ratio(float64(r.Cycles[0]), float64(r.Cycles[2])), "", "", "", "")
	t.Add("speedup gs vs flat", stats.Ratio(float64(r.Cycles[1]), float64(r.Cycles[2])), "", "", "", "")
	return t
}

// runIndexedRig simulates one variant's stream on a fresh single-core
// rig and folds its metrics into slot i of the result.
func runIndexedRig(r *IndexedResult, i int, opts Options, s cpu.Stream) error {
	q := &sim.EventQueue{}
	cfg := defaultConfig(1)
	cfg.Metrics, cfg.Mem.Observer, cfg.Flight = telemetryForRig(opts.Capture, r.Name+"/"+indexedVariants[i], q)
	if cfg.Metrics != nil {
		cfg.LatencyTraceCap = maxLatencyTraces
	}
	mem, err := memsys.New(cfg, q)
	if err != nil {
		return err
	}
	m := runStreams(q, mem, []cpu.Stream{s})
	r.Cycles[i] = m.Cycles
	r.DRAMReads[i] = m.Ctrl.ReadsServed
	r.Bursts[i] = m.Mem.GathervBursts
	r.Patterned[i] = m.Mem.GathervPatterned
	r.Fallback[i] = m.Mem.GathervFallback
	return nil
}

// checkIndexedChecksums enforces the cross-variant functional invariant.
func checkIndexedChecksums(r *IndexedResult, sums [3]uint64) error {
	if sums[0] != sums[1] || sums[0] != sums[2] {
		return fmt.Errorf("bench: %s checksums diverge across variants: %#x %#x %#x",
			r.Name, sums[0], sums[1], sums[2])
	}
	r.Checksum = sums[0]
	return nil
}

// hashJoinProbeBatch is the probe-phase gatherv vector length.
const hashJoinProbeBatch = 32

// RunHashJoin runs the hash-join probe workload: build a join index
// over the key column (a stride-8 field scan), then Txns random probes
// fetching matched payloads.
func RunHashJoin(opts Options) (*IndexedResult, error) {
	r := &IndexedResult{
		Name:  "hashjoin",
		Scale: fmt.Sprintf("%d tuples, %d probes", opts.Tuples, opts.Txns),
	}
	var sums [3]uint64
	err := opts.pool().Run(3, func(i int) error {
		layout := imdb.RowStore
		if i == 2 {
			layout = imdb.GSStore
		}
		db, err := templateDB(layout, opts.Tuples)
		if err != nil {
			return err
		}
		var hres imdb.HashJoinResult
		s, err := db.HashJoinStream(opts.Txns, hashJoinProbeBatch, opts.Seed, i > 0, &hres)
		if err != nil {
			return err
		}
		if err := runIndexedRig(r, i, opts, s); err != nil {
			return err
		}
		want := imdb.ExpectedHashJoinChecksum(opts.Tuples, opts.Txns, hashJoinProbeBatch, opts.Seed)
		if hres != want {
			return fmt.Errorf("bench: hashjoin %s result %+v, want %+v", indexedVariants[i], hres, want)
		}
		sums[i] = hres.Checksum
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := checkIndexedChecksums(r, sums); err != nil {
		return nil, err
	}
	return r, nil
}

// spmvNNZPerRow is the fixed row degree of the random CSR matrix.
const spmvNNZPerRow = 16

// spmvRows derives the output dimension from the table-size knob so one
// -tuples flag scales every experiment.
func spmvRows(tuples int) int {
	rows := tuples / 64
	if rows < 64 {
		rows = 64
	}
	return (rows + 7) &^ 7
}

// spmvCols derives the x-vector dimension: 8x the tuple knob, so the
// row gathers draw sparsely from an x far larger than the L2 and are
// compulsory-miss dominated — the regime where indexed gathers matter
// (a cache-resident x makes the scalar variant win trivially; see
// gemm.SpMV).
func spmvCols(tuples int) int {
	cols := tuples * 8
	if cols < 4096 {
		cols = 4096
	}
	return (cols + 7) &^ 7
}

// RunSpMV runs the CSR sparse matrix-vector workload.
func RunSpMV(opts Options) (*IndexedResult, error) {
	rows, cols := spmvRows(opts.Tuples), spmvCols(opts.Tuples)
	r := &IndexedResult{
		Name:  "spmv",
		Scale: fmt.Sprintf("%dx%d, %d nnz/row", rows, cols, spmvNNZPerRow),
	}
	var sums [3]uint64
	err := opts.pool().Run(3, func(i int) error {
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		sp, err := gemm.NewSpMV(mach, rows, cols, spmvNNZPerRow, opts.Seed, i == 2)
		if err != nil {
			return err
		}
		var sres gemm.SpMVResult
		s, err := sp.Stream(i > 0, &sres)
		if err != nil {
			return err
		}
		if err := runIndexedRig(r, i, opts, s); err != nil {
			return err
		}
		if want := sp.Reference(); sres.YSum != want {
			return fmt.Errorf("bench: spmv %s YSum %d, want %d", indexedVariants[i], sres.YSum, want)
		}
		sums[i] = sres.YSum
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := checkIndexedChecksums(r, sums); err != nil {
		return nil, err
	}
	return r, nil
}

// ptrChaseChains is the lockstep batch width of the traversal.
const ptrChaseChains = 64

// RunPtrChase runs the pointer-chasing traversal: Txns/8 lockstep steps
// of 64 chains over a random graph's next-pointer fields.
func RunPtrChase(vertices, avgDeg int, opts Options) (*IndexedResult, error) {
	if vertices <= 0 || vertices%8 != 0 {
		return nil, fmt.Errorf("bench: vertices must be a positive multiple of 8")
	}
	steps := opts.Txns / 8
	// Cap total hops at the vertex count: the chains then walk disjoint
	// arcs of the pointer cycle and never revisit a vertex, the no-reuse
	// traversal regime where cache-bypassing gathers are the right tool.
	// (Past one full lap the table is L2-resident and cached scalar loads
	// win — gatherv is the wrong access path for reused working sets.)
	if max := vertices / ptrChaseChains; steps > max {
		steps = max
	}
	if steps < 1 {
		steps = 1
	}
	r := &IndexedResult{
		Name:  "ptrchase",
		Scale: fmt.Sprintf("%d vertices, %d chains x %d steps", vertices, ptrChaseChains, steps),
	}
	var sums [3]uint64
	err := opts.pool().Run(3, func(i int) error {
		layout := graph.AoS
		if i == 2 {
			layout = graph.GS
		}
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		g, err := graph.NewRandom(mach, layout, vertices, avgDeg, opts.Seed)
		if err != nil {
			return err
		}
		if err := g.InitPtrChase(opts.Seed + 2); err != nil {
			return err
		}
		var pres graph.PtrChaseResult
		s, err := g.PtrChaseStream(ptrChaseChains, steps, opts.Seed+1, i > 0, &pres)
		if err != nil {
			return err
		}
		if err := runIndexedRig(r, i, opts, s); err != nil {
			return err
		}
		if want := uint64(ptrChaseChains) * uint64(steps); pres.Hops != want {
			return fmt.Errorf("bench: ptrchase %s hops %d, want %d", indexedVariants[i], pres.Hops, want)
		}
		sums[i] = pres.Checksum
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := checkIndexedChecksums(r, sums); err != nil {
		return nil, err
	}
	return r, nil
}
