// Package bench contains the experiment runners that regenerate every
// table and figure of the paper's evaluation (§5): Table 1 (system
// configuration), Figure 7 (gather map), Figure 9 (transactions),
// Figure 10 (analytics), Figure 11 (HTAP), Figure 12 (performance/energy
// summary), Figure 13 (GEMM), plus the §5.3 key-value workload and the
// §3.2 shuffling ablation.
//
// Each runner returns structured results plus a rendered text table, so
// both cmd/gsbench and the Go benchmarks share one implementation.
package bench

import (
	"fmt"
	"sync"

	"gsdram/internal/cpu"
	"gsdram/internal/energy"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memctrl"
	"gsdram/internal/memsys"
	"gsdram/internal/runner"
	"gsdram/internal/sample"
	"gsdram/internal/sim"
)

// SimVersion names the simulator's semantic version. It participates in
// the experiment-spec code fingerprint (internal/spec), which keys the
// on-disk result cache: bump it whenever a change alters simulation
// results (timing model, coherence, workload generation, document
// schema), so cached documents from older semantics can never be
// returned for new requests. Builds stamped with VCS info additionally
// mix the commit revision into the fingerprint.
const SimVersion = "gsdram-sim/2"

// Options scales the experiments. The zero value is unusable; start from
// DefaultOptions.
type Options struct {
	// Tuples is the database table size. The paper uses 1048576 (a 64 MB
	// table); the default is 131072 (8 MB) so the full suite runs in
	// minutes. Shapes are table-size independent once the table exceeds
	// the L2.
	Tuples int
	// Txns is the number of transactions per Figure 9 run (paper: 10000).
	Txns int
	// GemmSizes are the matrix dimensions for Figure 13 (paper: 32-1024).
	GemmSizes []int
	// Seed drives all workload randomness.
	Seed uint64
	// Workers is the number of concurrent simulation runs per experiment.
	// Zero selects runtime.GOMAXPROCS(0); 1 reproduces the historical
	// serial execution order bit-for-bit. Every worker count produces
	// identical results: runs are independent rigs whose seeds depend only
	// on the run index (see internal/runner).
	Workers int
	// Sample, when non-nil, switches the runners that support it (Figure
	// 9, Figure 10, the pattern sweep) to interval sampling
	// (internal/sample): each run's Cycles and Energy become the sampled
	// extrapolation, and the result carries the per-run estimates with
	// their confidence intervals. Sampled runs are untelemetered. The
	// per-run placement seed is derived from Sample.Seed and the run
	// index, so results stay identical at any worker count.
	Sample *sample.Config
	// Capture, when non-nil, enables telemetry capture for this batch's
	// labelled runs: every labelled rig records its metrics registry,
	// epoch series, and DRAM/stall traces into the capture, drained with
	// Capture.Drain after the runner returns. Capture is per-batch state
	// (never serialized, never part of a spec hash); concurrent batches
	// with independent captures do not serialize on any global switch.
	// Telemetry observes without mutating — results are bit-identical
	// with capture on or off.
	Capture *Capture
}

// pool returns the worker pool the experiment's runs are submitted to.
func (o Options) pool() runner.Pool { return runner.Pool{Workers: o.Workers} }

// DefaultOptions returns the default experiment scale.
func DefaultOptions() Options {
	return Options{
		Tuples:    131072,
		Txns:      10000,
		GemmSizes: []int{32, 64, 128, 256},
		Seed:      42,
	}
}

// Validate reports whether the options describe a runnable experiment
// scale; the CLI flag layer and the spec layer (internal/spec) both
// defer to it so they cannot drift.
func (o Options) Validate() error {
	if o.Tuples <= 0 {
		return fmt.Errorf("tuples must be positive, got %d", o.Tuples)
	}
	if o.Txns <= 0 {
		return fmt.Errorf("txns must be positive, got %d", o.Txns)
	}
	if len(o.GemmSizes) == 0 {
		return fmt.Errorf("at least one GEMM size is required")
	}
	for _, n := range o.GemmSizes {
		if n <= 0 {
			return fmt.Errorf("GEMM sizes must be positive, got %d", n)
		}
	}
	if o.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", o.Workers)
	}
	if s := o.Sample; s != nil && s.Interval <= s.Warmup+s.Measure {
		return fmt.Errorf("sample interval (%d) must exceed warmup + measure (%d)",
			s.Interval, s.Warmup+s.Measure)
	}
	return nil
}

// QuickOptions returns a reduced scale for unit tests and -short runs.
func QuickOptions() Options {
	return Options{
		Tuples:    8192,
		Txns:      500,
		GemmSizes: []int{32, 64},
		Seed:      42,
	}
}

// RunMetrics captures one simulated run of the event-driven system.
type RunMetrics struct {
	Cycles    uint64 // runtime of the measured core(s)
	CoreStats []cpu.Stats
	Mem       memsys.Stats
	Ctrl      memctrl.Stats
	Energy    energy.Report
}

// runConfig describes one single-workload simulation.
type runConfig struct {
	layout   imdb.Layout
	tuples   int
	prefetch bool
	cores    int
	// label names the run for telemetry capture (e.g. "fig9/GS-DRAM/
	// 50-25-25"). Empty disables capture for this rig even when the
	// batch has a capture context; labels must be unique within a batch.
	label string
	// capture is the batch's telemetry sink (Options.Capture); nil
	// builds an untelemetered rig regardless of label.
	capture *Capture
}

// rigTemplates caches one populated machine+DB per (layout, tuples):
// population is deterministic, so every run with the same key starts from
// bit-identical state whether it clones the template or rebuilds from
// scratch, and cloning row data is far cheaper than re-running the
// per-line functional writes. The cache is shared across experiments and
// guarded for the concurrent worker pool.
var rigTemplates struct {
	sync.Mutex
	m map[rigKey]*imdb.DB
}

type rigKey struct {
	layout imdb.Layout
	tuples int
}

// templateDB returns a clone of the populated template for (layout,
// tuples), building the template on first use.
func templateDB(layout imdb.Layout, tuples int) (*imdb.DB, error) {
	rigTemplates.Lock()
	defer rigTemplates.Unlock()
	key := rigKey{layout: layout, tuples: tuples}
	tpl := rigTemplates.m[key]
	if tpl == nil {
		mach, err := machine.Default()
		if err != nil {
			return nil, err
		}
		tpl, err = imdb.New(mach, layout, tuples)
		if err != nil {
			return nil, err
		}
		if rigTemplates.m == nil {
			rigTemplates.m = make(map[rigKey]*imdb.DB)
		}
		rigTemplates.m[key] = tpl
	}
	return tpl.Clone(), nil
}

// newRig builds a fresh machine + DB + memory system for a run. Every run
// gets its own state so experiments are independent.
func newRig(rc runConfig) (*machine.Machine, *imdb.DB, *sim.EventQueue, *memsys.System, error) {
	db, err := templateDB(rc.layout, rc.tuples)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	mach := db.Machine()
	q := &sim.EventQueue{}
	cfg := defaultConfig(rc.cores)
	cfg.EnablePrefetch = rc.prefetch
	cfg.Metrics, cfg.Mem.Observer, cfg.Flight = telemetryForRig(rc.capture, rc.label, q)
	if cfg.Metrics != nil {
		cfg.LatencyTraceCap = maxLatencyTraces
	}
	mem, err := memsys.New(cfg, q)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return mach, db, q, mem, nil
}

// measure assembles the metrics after a run completes.
func measure(q *sim.EventQueue, mem *memsys.System, cores []*cpu.Core) RunMetrics {
	var m RunMetrics
	for _, c := range cores {
		st := c.Stats()
		m.CoreStats = append(m.CoreStats, st)
		if rt := uint64(st.FinishCycle); rt > m.Cycles {
			m.Cycles = rt
		}
	}
	m.Mem = mem.Stats()
	m.Ctrl = mem.MemStats()
	l1, l2 := mem.CacheStats()
	var instrs uint64
	for _, st := range m.CoreStats {
		instrs += st.Instructions
	}
	m.Energy = energy.Estimate(energy.Activity{
		Runtime:      sim.Cycle(m.Cycles),
		FreqGHz:      4,
		Cores:        len(cores),
		Instructions: instrs,
		L1:           l1,
		L2:           l2,
		Mem:          mem.MemStats(),
	}, energy.DefaultDRAM(), energy.DefaultCPU())
	return m
}

// noInline disables every core's event-horizon fast path (see
// internal/cpu): each op then schedules through the event queue, exactly
// reproducing the pure event-driven execution. It backs the gsbench
// -noinline escape hatch and the equivalence tests; results must be
// bit-identical either way.
var noInline bool

// SetNoInline toggles the inline fast path for every core built by
// subsequent experiment runs. Call it before starting experiments; it is
// read (never written) by concurrent runs.
func SetNoInline(v bool) { noInline = v }

// l2Latency, when non-zero, overrides the model's L2 hit latency for
// every rig built by subsequent runs. It is an ablation knob for
// regression-forensics testing: perturbing one latency stage on purpose
// gives `gsbench explain` a known-cause delta to attribute. Like
// noInline it is process-wide; spec.Run serializes specs that set it.
var l2Latency sim.Cycle

// SetL2Latency overrides the L2 hit latency in CPU cycles for every rig
// built by subsequent experiment runs (0 restores the model default).
// Call it before starting experiments.
func SetL2Latency(v uint64) { l2Latency = sim.Cycle(v) }

// defaultConfig is memsys.DefaultConfig plus the process-wide ablation
// overrides. Every rig the bench package builds goes through it.
func defaultConfig(cores int) memsys.Config {
	cfg := memsys.DefaultConfig(cores)
	if l2Latency > 0 {
		cfg.L2Latency = l2Latency
	}
	return cfg
}

// runStreams executes one stream per core to completion and returns the
// metrics.
func runStreams(q *sim.EventQueue, mem *memsys.System, streams []cpu.Stream) RunMetrics {
	return runStreamsSB(q, mem, streams, 0)
}

// runStreamsSB is runStreams with a per-core store-buffer capacity.
func runStreamsSB(q *sim.EventQueue, mem *memsys.System, streams []cpu.Stream, sbCap int) RunMetrics {
	cores := make([]*cpu.Core, len(streams))
	for i, s := range streams {
		cores[i] = cpu.NewWithStoreBuffer(i, q, mem, s, nil, sbCap)
		cores[i].SetNoInline(noInline)
		cores[i].Start(0)
	}
	rt := takeTelemetry(q)
	rt.start(q, mem, cores)
	q.Run()
	for _, c := range cores {
		if !c.Stats().Finished {
			panic("bench: core did not finish")
		}
	}
	rt.finish(q, cores)
	return measure(q, mem, cores)
}

// layouts is the fixed comparison order used by every IMDB figure.
var layouts = []imdb.Layout{imdb.RowStore, imdb.ColumnStore, imdb.GSStore}

// checkSum panics if a functional analytics result does not match the
// closed form — every benchmark run double-checks data correctness.
func checkSums(res *imdb.AnalyticsResult, tuples int, columns []int) {
	for i, f := range columns {
		want := imdb.ExpectedColumnSum(tuples, f)
		if res.Sums[i] != want {
			panic(fmt.Sprintf("bench: analytics sum mismatch: column %d = %d, want %d", f, res.Sums[i], want))
		}
	}
}
