package bench

import (
	"bytes"
	"reflect"
	"testing"

	"gsdram/internal/flight"
)

// TestFlightDoesNotPerturbResults: arming the flight recorder must leave
// the simulation results deeply equal to an unarmed run — recording
// observes, never mutates — while still filling the rings.
func TestFlightDoesNotPerturbResults(t *testing.T) {
	opts := telemetryTestOpts(1)
	base, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	capture := NewCapture(0)
	capture.SetFlightDepth(64)
	opts.Capture = capture
	got, err := RunFig9(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Runs, got.Runs) {
		t.Fatal("flight-armed Fig9 results differ from unarmed results")
	}
	recs := capture.FlightRecorders()
	if want := 3 * len(base.Mixes); len(recs) != want {
		t.Fatalf("got %d flight recorders, want %d", len(recs), want)
	}
	for _, lr := range recs {
		if lr.Rec.Depth() != 64 {
			t.Errorf("%s: depth %d, want 64", lr.Label, lr.Rec.Depth())
		}
		// Every rig drives DRAM, caches, MSHRs, and cores; those rings
		// must have seen traffic.
		for _, c := range []flight.Component{flight.CompDDR, flight.CompCache, flight.CompMSHR, flight.CompCore} {
			if lr.Rec.Seen(c) == 0 {
				t.Errorf("%s: component %s recorded nothing", lr.Label, c)
			}
		}
	}
	// The drained telemetry runs carry their recorders too.
	for _, r := range capture.Drain() {
		if r.Flight == nil {
			t.Errorf("%s: telemetry run has no flight recorder", r.Label)
		}
	}
}

// TestFlightIdenticalAcrossWorkers: the recorded event history — down to
// the serialized NDJSON bytes — must not depend on the worker count.
// Events are recorded in simulated-cycle order by construction, so any
// worker count replays the same rings.
func TestFlightIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker replay in -short mode")
	}
	dump := func(workers int) []byte {
		c := NewCapture(0)
		c.SetFlightDepth(64)
		opts := telemetryTestOpts(workers)
		opts.Capture = c
		if _, err := RunFig9(opts); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := flight.WriteNDJSON(&buf, c.FlightRecorders(), nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial, parallel := dump(1), dump(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("flight NDJSON dump differs across worker counts")
	}
	if len(serial) == 0 {
		t.Fatal("empty flight dump")
	}
}

// TestFlightDisabledByDefault: without SetFlightDepth the capture hands
// out no recorders and telemetry runs carry nil — the zero-overhead
// default.
func TestFlightDisabledByDefault(t *testing.T) {
	c := NewCapture(0)
	opts := telemetryTestOpts(1)
	opts.Capture = c
	if _, err := RunFig9(opts); err != nil {
		t.Fatal(err)
	}
	if recs := c.FlightRecorders(); len(recs) != 0 {
		t.Fatalf("got %d flight recorders without SetFlightDepth", len(recs))
	}
	for _, r := range c.Drain() {
		if r.Flight != nil {
			t.Errorf("%s: unexpected flight recorder", r.Label)
		}
	}
}
