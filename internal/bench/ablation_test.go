package bench

import (
	"strings"
	"testing"

	"gsdram/internal/gsdram"
	"gsdram/internal/imdb"
)

// TestAutoGatherShape verifies the §4 future-work mechanism end to end:
// transparent promotion must recover most of the explicit-pattload
// advantage over plain loads.
func TestAutoGatherShape(t *testing.T) {
	opts := QuickOptions()
	r, err := RunAutoGather(opts)
	if err != nil {
		t.Fatal(err)
	}
	explicit, plain, auto := r.Cycles[0], r.Cycles[1], r.Cycles[2]
	if plain < 2*explicit {
		t.Errorf("plain loads (%d) should be much slower than pattloads (%d)", plain, explicit)
	}
	if auto > (explicit+plain)/2 {
		t.Errorf("auto promotion (%d) recovered too little of the gap (explicit %d, plain %d)", auto, explicit, plain)
	}
	if r.Promoted == 0 {
		t.Error("no accesses were promoted")
	}
	if r.LineReads[2] >= r.LineReads[1] {
		t.Errorf("promotion did not reduce line fetches: %d vs %d", r.LineReads[2], r.LineReads[1])
	}
	if out := r.Table().String(); !strings.Contains(out, "auto promotion") {
		t.Error("table malformed")
	}
}

// TestSchedulerAblationShape: open-row + FR-FCFS (Table 1) must win on
// the streaming analytics scan; the ablations must still complete and
// stay within sane bounds.
func TestSchedulerAblationShape(t *testing.T) {
	opts := QuickOptions()
	r, err := RunSchedulerAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	baseScan := r.Cycles[0][0]
	if closedScan := r.Cycles[2][0]; closedScan < baseScan {
		t.Errorf("closed-row scan (%d) beat open-row (%d) on streaming traffic", closedScan, baseScan)
	}
	for pi := 0; pi < 3; pi++ {
		for wi := 0; wi < 2; wi++ {
			if r.Cycles[pi][wi] == 0 {
				t.Fatalf("policy %d workload %d did not run", pi, wi)
			}
		}
	}
	if out := r.Table().String(); !strings.Contains(out, "FR-FCFS, open-row (Table 1)") {
		t.Error("table malformed")
	}
}

// TestGraphShape verifies the graph workload's best-of-both claim: GS
// tracks SoA on the scan-heavy PageRank kernel and AoS on random
// updates.
func TestGraphShape(t *testing.T) {
	r, err := RunGraph(16384, 4, 1500, 42)
	if err != nil {
		t.Fatal(err)
	}
	aos, soa, gs := 0, 1, 2
	if float64(r.PageRank[gs]) > 1.3*float64(r.PageRank[soa]) {
		t.Errorf("PageRank: GS %d vs SoA %d; want parity", r.PageRank[gs], r.PageRank[soa])
	}
	if r.PageRank[aos] < r.PageRank[gs] {
		t.Errorf("PageRank: AoS %d beat GS %d", r.PageRank[aos], r.PageRank[gs])
	}
	if float64(r.Update[gs]) > 1.3*float64(r.Update[aos]) {
		t.Errorf("updates: GS %d vs AoS %d; want parity", r.Update[gs], r.Update[aos])
	}
	if float64(r.Update[soa]) < 1.5*float64(r.Update[gs]) {
		t.Errorf("updates: SoA %d should clearly trail GS %d", r.Update[soa], r.Update[gs])
	}
	if out := r.Table().String(); !strings.Contains(out, "PageRank") {
		t.Error("table malformed")
	}
	if _, err := RunGraph(10, 4, 10, 1); err == nil {
		t.Error("bad vertex count accepted")
	}
}

// TestChannelScaling: a second DDR3 channel must meaningfully speed up
// the bandwidth-bound prefetched scan, and 1-channel bandwidth must sit
// below the 12.8 GB/s DDR3-1600 peak.
func TestChannelScaling(t *testing.T) {
	opts := QuickOptions()
	opts.Tuples = 65536
	r, err := RunChannels(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.GBs[0] <= 0 || r.GBs[0] > 12.8 {
		t.Errorf("1-channel bandwidth %.2f GB/s outside (0, 12.8]", r.GBs[0])
	}
	if float64(r.Cycles[1]) > 0.75*float64(r.Cycles[0]) {
		t.Errorf("2 channels gave only %d vs %d cycles; want a real speedup", r.Cycles[1], r.Cycles[0])
	}
	if !strings.Contains(r.Table().String(), "GB/s") {
		t.Error("table malformed")
	}
}

// TestImpulseComparison: controller-side gathering (Impulse-like) must
// cost substantially more DRAM line reads (and energy) than the in-DRAM
// gather, with equal cache-side behaviour.
func TestImpulseComparison(t *testing.T) {
	opts := QuickOptions()
	opts.Tuples = 32768
	r, err := RunImpulse(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.LineReads[1] < 6*r.LineReads[0] {
		t.Errorf("controller gather read %d lines vs GS %d; want ~8x", r.LineReads[1], r.LineReads[0])
	}
	if r.EnergyMJ[1] <= r.EnergyMJ[0] {
		t.Errorf("controller gather energy %.3f not above GS %.3f", r.EnergyMJ[1], r.EnergyMJ[0])
	}
	if r.Cycles[1] < r.Cycles[0] {
		t.Errorf("controller gather (%d) faster than GS (%d)", r.Cycles[1], r.Cycles[0])
	}
	if !strings.Contains(r.Table().String(), "Impulse") {
		t.Error("table malformed")
	}
}

// TestPatternSweep: each extra pattern bit halves the line fetches of the
// field scan; cycles decrease monotonically.
func TestPatternSweep(t *testing.T) {
	opts := QuickOptions()
	opts.Tuples = 32768
	r, err := RunPatternSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		// Demand fetch counts halve (prefetches add noise; use a loose 1.7x).
		if float64(r.LineReads[p-1]) < 1.7*float64(r.LineReads[p]) {
			t.Errorf("p=%d: line reads %d -> %d; want ~2x drop", p, r.LineReads[p-1], r.LineReads[p])
		}
		if r.Cycles[p] >= r.Cycles[p-1] {
			t.Errorf("p=%d: cycles did not decrease (%d -> %d)", p, r.Cycles[p-1], r.Cycles[p])
		}
	}
	if !strings.Contains(r.Table().String(), "widest stride") {
		t.Error("table malformed")
	}
}

// TestStoreBufferAblation: the store buffer must help every layout a
// little and the column store the most, without changing the layout
// ordering (GS ~ Row << Column).
func TestStoreBufferAblation(t *testing.T) {
	opts := QuickOptions()
	r, err := RunStoreBuffer(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []imdb.Layout{imdb.RowStore, imdb.ColumnStore, imdb.GSStore} {
		c := r.Cycles[l]
		if c[1] > c[0] {
			t.Errorf("%v: store buffer slowed it down (%d -> %d)", l, c[0], c[1])
		}
	}
	colGain := float64(r.Cycles[imdb.ColumnStore][0]) / float64(r.Cycles[imdb.ColumnStore][1])
	gsGain := float64(r.Cycles[imdb.GSStore][0]) / float64(r.Cycles[imdb.GSStore][1])
	if colGain < gsGain {
		t.Errorf("column store gain %.2f below GS gain %.2f; writes should matter more for the column store", colGain, gsGain)
	}
	// Layout ordering survives.
	if r.Cycles[imdb.ColumnStore][1] < 15*r.Cycles[imdb.GSStore][1]/10 {
		t.Errorf("with store buffer, column store (%d) no longer clearly behind GS (%d)", r.Cycles[imdb.ColumnStore][1], r.Cycles[imdb.GSStore][1])
	}
	if !strings.Contains(r.Table().String(), "store buffer") {
		t.Error("table malformed")
	}
}

// TestPixelsShape: the GS image histograms with ~8x fewer line fetches;
// shading stays at parity (whole-record access).
func TestPixelsShape(t *testing.T) {
	r, err := RunPixels(8192, 500, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.HistLines[1]*6 > r.HistLines[0] {
		t.Errorf("GS histogram fetched %d lines vs plain %d; want ~8x fewer", r.HistLines[1], r.HistLines[0])
	}
	if r.HistCycles[1] >= r.HistCycles[0] {
		t.Errorf("GS histogram (%d) not faster than plain (%d)", r.HistCycles[1], r.HistCycles[0])
	}
	ratio := float64(r.ShadeCycles[1]) / float64(r.ShadeCycles[0])
	if ratio > 1.3 || ratio < 0.7 {
		t.Errorf("shade cycles diverged: GS %d vs plain %d", r.ShadeCycles[1], r.ShadeCycles[0])
	}
	if !strings.Contains(r.Table().String(), "patt 7") {
		t.Error("table malformed")
	}
	if _, err := RunPixels(10, 5, 1); err == nil {
		t.Error("bad pixel count accepted")
	}
}

// TestEnergyBreakdownTable: components are positive and sum close to the
// reported totals.
func TestEnergyBreakdownTable(t *testing.T) {
	r, err := RunFig12(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := r.EnergyBreakdownTable().String()
	if !strings.Contains(out, "DRAM commands") || !strings.Contains(out, "GS-DRAM") {
		t.Fatalf("breakdown malformed:\n%s", out)
	}
}

// TestAllExperimentsQuick is the integration smoke test behind
// `gsbench -exp all`: every runner completes at quick scale.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("integration smoke test")
	}
	opts := QuickOptions()
	if _, err := RunFig9(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig10(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig11(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig13(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunKVStore(256, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunGraph(1024, 4, 100, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunChannels(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunImpulse(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPatternSweep(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunStoreBuffer(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAutoGather(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSchedulerAblation(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := RunPixels(512, 50, 1); err != nil {
		t.Fatal(err)
	}
}

func TestAblationECCTable(t *testing.T) {
	out := AblationECC(gsdram.GS844).String()
	if !strings.Contains(out, "intra-chip") {
		t.Fatalf("ECC ablation malformed:\n%s", out)
	}
}
