package bench

import (
	"fmt"

	"gsdram/internal/cache"
	"gsdram/internal/cpu"
	"gsdram/internal/gemm"
	"gsdram/internal/gsdram"
	"gsdram/internal/imdb"
	"gsdram/internal/kvstore"
	"gsdram/internal/machine"
	"gsdram/internal/memctrl"
	"gsdram/internal/memsys"
	"gsdram/internal/runner"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// Table1 renders the simulated system configuration (paper Table 1).
func Table1() *stats.Table {
	mc := memctrl.DefaultConfig()
	l1 := cache.L1Default()
	l2 := cache.L2Default()
	t := stats.NewTable("Table 1: main parameters of the simulated system", "component", "configuration")
	t.Add("Processor", "1-2 cores, in-order model, 4 GHz")
	t.Add("L1-D Cache", fmt.Sprintf("private, %d KB, %d-way associative, LRU", l1.SizeBytes>>10, l1.Ways))
	t.Add("L2 Cache", fmt.Sprintf("shared, %d MB, %d-way associative, LRU", l2.SizeBytes>>20, l2.Ways))
	t.Add("Memory", fmt.Sprintf("DDR3-1600, %d channel(s), %d rank(s), %d banks",
		mc.Spec.Channels, mc.Spec.Ranks, mc.Spec.Banks))
	t.Add("Controller", "open row, FR-FCFS, GS-DRAM(8,3,3)")
	t.Add("Row buffer", fmt.Sprintf("%d KB per rank (%d cache-line columns)", mc.Spec.Cols*mc.Spec.LineBytes>>10, mc.Spec.Cols))
	return t
}

// Fig7 renders the gather map of Figure 7 for the given configuration,
// derived from the CTL formula over the shuffled layout.
func Fig7(p gsdram.Params, cols int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 7: cache lines gathered by GS-DRAM(%d,%d,%d)", p.Chips, p.ShuffleStages, p.PatternBits),
		"pattern", "col ID", "word indices retrieved")
	for patt := gsdram.Pattern(0); patt <= p.MaxPattern(); patt++ {
		for c := 0; c < cols; c++ {
			t.Add(fmt.Sprint(patt), fmt.Sprint(c), fmt.Sprint(p.GatherIndices(patt, c)))
		}
	}
	return t
}

// Fig13Result holds Figure 13: GEMM execution time per size and variant.
type Fig13Result struct {
	Sizes   []int
	Results map[int][]gemm.Result // per size, in variant order
}

// Fig13Variants is the comparison set: the paper's three bars plus the
// packing ablation.
var Fig13Variants = []gemm.Variant{gemm.Naive, gemm.TiledGather, gemm.TiledPacked, gemm.GSDRAM}

// RunFig13 reproduces Figure 13: GEMM with the best tiled layout vs
// GS-DRAM, normalised to the non-tiled baseline.
func RunFig13(opts Options) (*Fig13Result, error) {
	res := &Fig13Result{Sizes: opts.GemmSizes, Results: map[int][]gemm.Result{}}
	// One job per matrix size; the variants within a size share one
	// workload (as the serial runner did), so they stay sequential inside
	// the job.
	runs := make([][]gemm.Result, len(opts.GemmSizes))
	err := opts.pool().Run(len(runs), func(j int) error {
		n := opts.GemmSizes[j]
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		w, err := gemm.NewWorkload(mach, n, opts.Seed)
		if err != nil {
			return err
		}
		for _, v := range Fig13Variants {
			r, err := w.Run(v, 0)
			if err != nil {
				return err
			}
			runs[j] = append(runs[j], r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for j, n := range opts.GemmSizes {
		res.Results[n] = runs[j]
	}
	return res, nil
}

// Table renders Figure 13 (normalised execution time, lower is better).
func (r *Fig13Result) Table() *stats.Table {
	t := stats.NewTable(
		"Figure 13: GEMM execution time normalised to the non-tiled baseline",
		"n", "Non-tiled", "Tiled+SW-gather", "Tiled+packing", "GS-DRAM", "GS vs best tiled")
	for _, n := range r.Sizes {
		rs := r.Results[n]
		base := float64(rs[0].Stats.Cycles)
		norm := func(i int) string { return fmt.Sprintf("%.3f", float64(rs[i].Stats.Cycles)/base) }
		bestTiled := rs[1].Stats.Cycles
		if rs[2].Stats.Cycles < bestTiled {
			bestTiled = rs[2].Stats.Cycles
		}
		gain := 100 * (1 - float64(rs[3].Stats.Cycles)/float64(bestTiled))
		t.Add(fmt.Sprint(n), norm(0), norm(1), norm(2), norm(3), fmt.Sprintf("%+.1f%%", gain))
	}
	return t
}

// KVResult holds the §5.3 key-value store comparison.
type KVResult struct {
	Pairs       int
	ScanLines   [2]uint64 // DRAM line fetches for a full key scan: plain, GS
	LookupCycle [2]uint64 // cycles for a miss lookup: plain, GS
}

// RunKVStore compares full-key-scan lookups on the plain and GS layouts.
func RunKVStore(pairs int, seed uint64) (*KVResult, error) {
	if pairs <= 0 || pairs%8 != 0 {
		return nil, fmt.Errorf("bench: pairs must be a positive multiple of 8")
	}
	res := &KVResult{Pairs: pairs}
	// Both layouts insert the same pairs (the rng is re-seeded per job).
	err := (runner.Pool{}).Run(2, func(idx int) error {
		gs := idx == 1
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		st, err := kvstore.New(mach, pairs, gs)
		if err != nil {
			return err
		}
		rng := sim.NewRand(seed)
		for i := 0; i < pairs; i++ {
			if _, err := st.Insert(rng.Uint64()|1, rng.Uint64()); err != nil {
				return err
			}
		}
		// A miss lookup scans every key. Time it against cold caches (a
		// fresh memory system): the scan is the paper's working-set-sized
		// access pattern, not a warm-cache replay.
		_, found, scan, err := st.Lookup(0)
		if err != nil {
			return err
		}
		if found {
			return fmt.Errorf("bench: phantom kv hit")
		}
		q := &sim.EventQueue{}
		mem, err := memsys.New(defaultConfig(1), q)
		if err != nil {
			return err
		}
		m := runStreams(q, mem, []cpu.Stream{cpu.SliceStream(scan)})
		res.ScanLines[idx] = m.Mem.DRAMReads
		res.LookupCycle[idx] = m.Cycles
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the key-value comparison.
func (r *KVResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Key-value store (Section 5.3): %d pairs, insert + full key scan", r.Pairs),
		"layout", "DRAM line fetches", "cycles (M)")
	t.Add("pair layout (plain)", fmt.Sprint(r.ScanLines[0]), stats.Mcycles(r.LookupCycle[0]))
	t.Add("pair layout (GS-DRAM, patt 1)", fmt.Sprint(r.ScanLines[1]), stats.Mcycles(r.LookupCycle[1]))
	return t
}

// AutoGatherResult holds the transparent pattern-promotion experiment.
type AutoGatherResult struct {
	Opts Options
	// Cycles / DRAM line fetches for a 1-column scan of the GS table
	// issued as: explicit pattloads, plain loads (no promotion), plain
	// loads with transparent promotion.
	Cycles    [3]uint64
	LineReads [3]uint64
	Promoted  uint64
}

// RunAutoGather evaluates the §4 future-work mechanism: the same
// unmodified (plain-load) column scan over a pattmalloc'd table, with and
// without the controller's transparent pattern promotion, against the
// explicit-pattload upper bound.
func RunAutoGather(opts Options) (*AutoGatherResult, error) {
	res := &AutoGatherResult{Opts: opts}
	type mode struct {
		plain bool
		auto  bool
	}
	modes := []mode{{false, false}, {true, false}, {true, true}}
	err := opts.pool().Run(len(modes), func(i int) error {
		md := modes[i]
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		db, err := imdb.New(mach, imdb.GSStore, opts.Tuples)
		if err != nil {
			return err
		}
		q := &sim.EventQueue{}
		cfg := defaultConfig(1)
		cfg.AutoPattern = md.auto
		mem, err := memsys.New(cfg, q)
		if err != nil {
			return err
		}
		var ar imdb.AnalyticsResult
		var s cpu.Stream
		if md.plain {
			s, err = db.PlainAnalyticsStream([]int{0}, &ar)
		} else {
			s, err = db.AnalyticsStream([]int{0}, &ar)
		}
		if err != nil {
			return err
		}
		m := runStreams(q, mem, []cpu.Stream{s})
		checkSums(&ar, opts.Tuples, []int{0})
		res.Cycles[i] = m.Cycles
		res.LineReads[i] = m.Mem.DRAMReads
		if md.auto {
			res.Promoted = mem.AutoPattStats().Promoted
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the transparent-promotion comparison.
func (r *AutoGatherResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Transparent pattern promotion (Section 4, future work): 1-column scan, %d tuples", r.Opts.Tuples),
		"access mode", "cycles (M)", "DRAM line fetches")
	labels := []string{"explicit pattload", "plain loads", "plain loads + auto promotion"}
	for i, l := range labels {
		t.Add(l, stats.Mcycles(r.Cycles[i]), fmt.Sprint(r.LineReads[i]))
	}
	return t
}

// SchedulerAblationResult compares FR-FCFS against FCFS and open-row
// against closed-row on the analytics scan (streaming), the transaction
// workload (random), and the two-core HTAP mix (where request reordering
// actually has requests to reorder).
type SchedulerAblationResult struct {
	Opts Options
	// Cycles indexed by [policy][workload]: policy 0 = FR-FCFS/open-row
	// (Table 1), 1 = FCFS/open-row, 2 = FR-FCFS/closed-row.
	// Workload 0 = analytics scan, 1 = transactions.
	Cycles [3][2]uint64
	// HTAPThroughput is the HTAP transaction throughput (txns/s, with
	// prefetching) under each policy.
	HTAPThroughput [3]float64
}

// RunSchedulerAblation quantifies how much the paper's controller
// configuration (FR-FCFS, open row) matters for the evaluated workloads.
func RunSchedulerAblation(opts Options) (*SchedulerAblationResult, error) {
	res := &SchedulerAblationResult{Opts: opts}
	pols := []struct {
		sched memctrl.SchedPolicy
		row   memctrl.RowPolicy
	}{
		{memctrl.PolicyFRFCFS, memctrl.OpenRow},
		{memctrl.PolicyFCFS, memctrl.OpenRow},
		{memctrl.PolicyFRFCFS, memctrl.ClosedRow},
	}
	// One job per (policy, sub-run): sub-runs 0 and 1 are the single-core
	// workloads, sub-run 2 is the two-core HTAP mix.
	err := opts.pool().Run(len(pols)*3, func(j int) error {
		pi, sub := j/3, j%3
		pol := pols[pi]
		if sub < 2 {
			wi := sub
			mach, err := machine.Default()
			if err != nil {
				return err
			}
			db, err := imdb.New(mach, imdb.GSStore, opts.Tuples)
			if err != nil {
				return err
			}
			q := &sim.EventQueue{}
			cfg := defaultConfig(1)
			cfg.Mem.Sched = pol.sched
			cfg.Mem.Row = pol.row
			mem, err := memsys.New(cfg, q)
			if err != nil {
				return err
			}
			var s cpu.Stream
			if wi == 0 {
				s, err = db.AnalyticsStream([]int{0}, nil)
			} else {
				s, err = db.TransactionStream(imdb.TxnMix{RO: 2, WO: 1, RW: 1}, opts.Txns, opts.Seed, nil)
			}
			if err != nil {
				return err
			}
			m := runStreams(q, mem, []cpu.Stream{s})
			res.Cycles[pi][wi] = m.Cycles
			return nil
		}

		// HTAP: analytics + transactions on two cores, prefetching on.
		mach, err := machine.Default()
		if err != nil {
			return err
		}
		db, err := imdb.New(mach, imdb.GSStore, opts.Tuples)
		if err != nil {
			return err
		}
		q := &sim.EventQueue{}
		cfg := defaultConfig(2)
		cfg.EnablePrefetch = true
		cfg.Mem.Sched = pol.sched
		cfg.Mem.Row = pol.row
		mem, err := memsys.New(cfg, q)
		if err != nil {
			return err
		}
		as, err := db.AnalyticsStream([]int{0}, nil)
		if err != nil {
			return err
		}
		var tr imdb.TxnResult
		ts, err := db.TransactionStream(imdb.TxnMix{RO: 1, WO: 1}, 0, opts.Seed, &tr)
		if err != nil {
			return err
		}
		txnCore := cpu.New(1, q, mem, ts, nil)
		txnCore.SetNoInline(noInline)
		var done sim.Cycle
		anaCore := cpu.New(0, q, mem, as, func(now sim.Cycle) {
			done = now
			txnCore.Stop()
		})
		anaCore.SetNoInline(noInline)
		anaCore.Start(0)
		txnCore.Start(0)
		q.Run()
		res.HTAPThroughput[pi] = float64(tr.Completed) / (float64(done) / 4e9)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the scheduler/row-policy ablation.
func (r *SchedulerAblationResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Controller ablation: GS-DRAM table, %d tuples / %d txns", r.Opts.Tuples, r.Opts.Txns),
		"policy", "analytics scan (Mcyc)", "transactions (Mcyc)", "HTAP txn tput (M/s)")
	labels := []string{"FR-FCFS, open-row (Table 1)", "FCFS, open-row", "FR-FCFS, closed-row"}
	for i, l := range labels {
		t.Add(l, stats.Mcycles(r.Cycles[i][0]), stats.Mcycles(r.Cycles[i][1]),
			fmt.Sprintf("%.2f", r.HTAPThroughput[i]/1e6))
	}
	return t
}

// AblationShuffle renders the §3.2 chip-conflict ablation: READ commands
// needed per gather under the simple vs. shuffled mapping. Power-of-2
// strides are the design target (zero conflicts under shuffling);
// non-power-of-2 strides illustrate the "additional challenges" of §3.1 —
// they are conflict-free under the simple mapping (odd strides are
// coprime with the chip count) but no pattern ID can express them, so
// GS-DRAM gains nothing either way.
func AblationShuffle(p gsdram.Params) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Ablation (Sections 3.1/3.2): READs per %d-value gather, GS-DRAM(%d,%d,%d)", p.Chips, p.Chips, p.ShuffleStages, p.PatternBits),
		"stride", "simple mapping", "column-ID shuffling", "one-READ gatherable")
	for stride := 1; stride <= p.Chips; stride *= 2 {
		set := gsdram.StrideSet(0, stride, p.Chips)
		t.Add(fmt.Sprint(stride),
			fmt.Sprint(p.ReadsNeeded(gsdram.SimpleMapping, set)),
			fmt.Sprint(p.ReadsNeeded(gsdram.ShuffledMapping, set)),
			"yes (pattern)")
	}
	for _, stride := range []int{3, 5, 6, 7} {
		set := gsdram.StrideSet(0, stride, p.Chips)
		t.Add(fmt.Sprintf("%d (non-pow-2)", stride),
			fmt.Sprint(p.ReadsNeeded(gsdram.SimpleMapping, set)),
			fmt.Sprint(p.ReadsNeeded(gsdram.ShuffledMapping, set)),
			"no (Section 3.1)")
	}
	return t
}

// AblationECC renders the §6.3 ECC-bandwidth ablation: ECC-chip reads per
// gather with a conventional ECC chip vs one with intra-chip column
// translation.
func AblationECC(p gsdram.Params) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("ECC bandwidth (Section 6.3): ECC-chip reads per gather, GS-DRAM(%d,%d,%d)", p.Chips, p.ShuffleStages, p.PatternBits),
		"pattern", "conventional ECC chip", "intra-chip translation")
	for patt := gsdram.Pattern(0); patt <= p.MaxPattern(); patt++ {
		t.Addf(fmt.Sprint(patt),
			p.ECCReadsPerGather(patt, 0, false),
			p.ECCReadsPerGather(patt, 0, true))
	}
	return t
}
