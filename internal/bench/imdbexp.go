package bench

import (
	"fmt"

	"gsdram/internal/cpu"
	"gsdram/internal/imdb"
	"gsdram/internal/sample"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// Fig9Result holds Figure 9: execution time of the transaction workload
// per mix and layout.
type Fig9Result struct {
	Opts  Options
	Mixes []imdb.TxnMix
	Runs  map[imdb.Layout][]RunMetrics // indexed like Mixes
	// Sampled holds the per-run estimates when the experiment ran under
	// interval sampling (Options.Sample); nil otherwise.
	Sampled map[imdb.Layout][]*sample.Result
}

// RunFig9 reproduces Figure 9: 10000 transactions per mix, for Row Store,
// Column Store and GS-DRAM.
func RunFig9(opts Options) (*Fig9Result, error) {
	res := &Fig9Result{Opts: opts, Mixes: imdb.Figure9Mixes, Runs: map[imdb.Layout][]RunMetrics{}}
	nm := len(res.Mixes)
	runs := make([]RunMetrics, len(layouts)*nm)
	// One job per (layout, mix), in the historical layout-major order. Each
	// job builds its own rig and owns result slot j; the workload seed is
	// opts.Seed for every run so all layouts replay the same transactions.
	ests := make([]*sample.Result, len(runs))
	err := opts.pool().Run(len(runs), func(j int) error {
		layout, mix := layouts[j/nm], res.Mixes[j%nm]
		label := fmt.Sprintf("fig9/%v/%v", layout, mix)
		if opts.Sample != nil {
			label = "" // sampled rigs are untelemetered
		}
		mach, db, q, mem, err := newRig(runConfig{layout: layout, tuples: opts.Tuples, cores: 1,
			label: label, capture: opts.Capture})
		if err != nil {
			return err
		}
		var tr imdb.TxnResult
		s, err := db.TransactionStream(mix, opts.Txns, opts.Seed, &tr)
		if err != nil {
			return err
		}
		var m RunMetrics
		if opts.Sample != nil {
			m, ests[j], err = runSampled(sampleConfigFor(*opts.Sample, j), mach, q, mem, s)
			if err != nil {
				return fmt.Errorf("bench: %v/%v sampled: %w", layout, mix, err)
			}
		} else {
			m = runStreams(q, mem, []cpu.Stream{s})
		}
		if tr.Completed != uint64(opts.Txns) {
			return fmt.Errorf("bench: %v/%v completed %d txns, want %d", layout, mix, tr.Completed, opts.Txns)
		}
		runs[j] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li, layout := range layouts {
		res.Runs[layout] = runs[li*nm : (li+1)*nm : (li+1)*nm]
	}
	if opts.Sample != nil {
		res.Sampled = map[imdb.Layout][]*sample.Result{}
		for li, layout := range layouts {
			res.Sampled[layout] = ests[li*nm : (li+1)*nm : (li+1)*nm]
		}
	}
	return res, nil
}

// SampledEntries flattens the sampled estimates in the fixed
// (layout-major) run order; empty when the experiment ran in full
// detail.
func (r *Fig9Result) SampledEntries() []SampledEntry {
	var es []SampledEntry
	for _, l := range layouts {
		for i, est := range r.Sampled[l] {
			es = append(es, SampledEntry{Run: fmt.Sprintf("fig9/%v/%v", l, r.Mixes[i]), Result: est})
		}
	}
	return es
}

// SampledTable renders the sampled Figure 9 estimates with their
// confidence intervals.
func (r *Fig9Result) SampledTable() *stats.Table {
	conf := 0.95
	if ests := r.Sampled[imdb.GSStore]; len(ests) > 0 && ests[0] != nil {
		conf = ests[0].Confidence
	}
	t := stats.NewTable(
		fmt.Sprintf("Figure 9 (sampled): %d txns, %d tuples (estimated Mcycles ± relative CI at %g%% confidence)",
			r.Opts.Txns, r.Opts.Tuples, conf*100),
		"mix (RO-WO-RW)", "Row Store", "Column Store", "GS-DRAM", "Col/GS ratio", "windows", "detail %")
	if r.Sampled == nil {
		return t
	}
	for i, mix := range r.Mixes {
		cell := func(l imdb.Layout) string {
			est := r.Sampled[l][i]
			return fmt.Sprintf("%s ±%.1f%%", stats.Mcycles(est.Cycles), est.RelCI()*100)
		}
		col, gs := r.Sampled[imdb.ColumnStore][i], r.Sampled[imdb.GSStore][i]
		t.Add(mix.String(), cell(imdb.RowStore), cell(imdb.ColumnStore), cell(imdb.GSStore),
			stats.Ratio(float64(col.Cycles), float64(gs.Cycles)),
			fmt.Sprint(gs.Windows),
			fmt.Sprintf("%.1f", gs.SampledFraction()*100))
	}
	return t
}

// Table renders the Figure 9 series (execution time in million cycles).
func (r *Fig9Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 9: transaction workload, %d txns, %d tuples (execution time, Mcycles)", r.Opts.Txns, r.Opts.Tuples),
		"mix (RO-WO-RW)", "Row Store", "Column Store", "GS-DRAM", "Col/GS ratio")
	for i, mix := range r.Mixes {
		row := r.Runs[imdb.RowStore][i].Cycles
		col := r.Runs[imdb.ColumnStore][i].Cycles
		gs := r.Runs[imdb.GSStore][i].Cycles
		t.Add(mix.String(), stats.Mcycles(row), stats.Mcycles(col), stats.Mcycles(gs),
			stats.Ratio(float64(col), float64(gs)))
	}
	return t
}

// AvgCycles returns the mean cycles per layout across mixes.
func (r *Fig9Result) AvgCycles(l imdb.Layout) float64 {
	var sum float64
	for _, m := range r.Runs[l] {
		sum += float64(m.Cycles)
	}
	return sum / float64(len(r.Runs[l]))
}

// AvgEnergy returns the mean total energy (mJ) per layout across mixes.
func (r *Fig9Result) AvgEnergy(l imdb.Layout) float64 {
	var sum float64
	for _, m := range r.Runs[l] {
		sum += m.Energy.TotalMJ()
	}
	return sum / float64(len(r.Runs[l]))
}

// Fig10Point identifies one analytics configuration.
type Fig10Point struct {
	Columns  int // 1 or 2
	Prefetch bool
}

// Fig10Result holds Figure 10: analytics execution time.
type Fig10Result struct {
	Opts   Options
	Points []Fig10Point
	Runs   map[imdb.Layout][]RunMetrics
	// Sampled holds the per-run estimates when the experiment ran under
	// interval sampling (Options.Sample); nil otherwise.
	Sampled map[imdb.Layout][]*sample.Result
}

// RunFig10 reproduces Figure 10: sum of 1 or 2 columns, without and with
// prefetching, for the three layouts.
func RunFig10(opts Options) (*Fig10Result, error) {
	res := &Fig10Result{
		Opts: opts,
		Points: []Fig10Point{
			{1, false}, {2, false}, {1, true}, {2, true},
		},
		Runs: map[imdb.Layout][]RunMetrics{},
	}
	np := len(res.Points)
	runs := make([]RunMetrics, len(layouts)*np)
	ests := make([]*sample.Result, len(runs))
	err := opts.pool().Run(len(runs), func(j int) error {
		layout, pt := layouts[j/np], res.Points[j%np]
		label := fmt.Sprintf("fig10/%v/%dcol/prefetch=%v", layout, pt.Columns, pt.Prefetch)
		if opts.Sample != nil {
			label = ""
		}
		mach, db, q, mem, err := newRig(runConfig{layout: layout, tuples: opts.Tuples, cores: 1, prefetch: pt.Prefetch,
			label: label, capture: opts.Capture})
		if err != nil {
			return err
		}
		columns := []int{0}
		if pt.Columns == 2 {
			columns = []int{0, 1}
		}
		var ar imdb.AnalyticsResult
		s, err := db.AnalyticsStream(columns, &ar)
		if err != nil {
			return err
		}
		var m RunMetrics
		if opts.Sample != nil {
			m, ests[j], err = runSampled(sampleConfigFor(*opts.Sample, j), mach, q, mem, s)
			if err != nil {
				return fmt.Errorf("bench: fig10 %v sampled: %w", layout, err)
			}
		} else {
			m = runStreams(q, mem, []cpu.Stream{s})
		}
		checkSums(&ar, opts.Tuples, columns)
		runs[j] = m
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li, layout := range layouts {
		res.Runs[layout] = runs[li*np : (li+1)*np : (li+1)*np]
	}
	if opts.Sample != nil {
		res.Sampled = map[imdb.Layout][]*sample.Result{}
		for li, layout := range layouts {
			res.Sampled[layout] = ests[li*np : (li+1)*np : (li+1)*np]
		}
	}
	return res, nil
}

// SampledEntries flattens the sampled estimates in the fixed run order;
// empty when the experiment ran in full detail.
func (r *Fig10Result) SampledEntries() []SampledEntry {
	var es []SampledEntry
	for _, l := range layouts {
		for i, est := range r.Sampled[l] {
			pt := r.Points[i]
			es = append(es, SampledEntry{
				Run:    fmt.Sprintf("fig10/%v/%dcol/prefetch=%v", l, pt.Columns, pt.Prefetch),
				Result: est,
			})
		}
	}
	return es
}

// Table renders the Figure 10 series.
func (r *Fig10Result) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 10: analytics workload, %d tuples (execution time, Mcycles)", r.Opts.Tuples),
		"query", "Row Store", "Column Store", "GS-DRAM", "Row/GS ratio", "lines fetched (Row/Col/GS)")
	for i, pt := range r.Points {
		label := fmt.Sprintf("%d column(s), prefetch=%v", pt.Columns, pt.Prefetch)
		row := r.Runs[imdb.RowStore][i]
		col := r.Runs[imdb.ColumnStore][i]
		gs := r.Runs[imdb.GSStore][i]
		t.Add(label, stats.Mcycles(row.Cycles), stats.Mcycles(col.Cycles), stats.Mcycles(gs.Cycles),
			stats.Ratio(float64(row.Cycles), float64(gs.Cycles)),
			fmt.Sprintf("%d / %d / %d", row.Ctrl.ReadsServed, col.Ctrl.ReadsServed, gs.Ctrl.ReadsServed))
	}
	return t
}

// avgOver averages cycles or energy over the points selected by keep.
func (r *Fig10Result) avgOver(l imdb.Layout, keep func(Fig10Point) bool, energy bool) float64 {
	var sum float64
	n := 0
	for i, pt := range r.Points {
		if !keep(pt) {
			continue
		}
		if energy {
			sum += r.Runs[l][i].Energy.TotalMJ()
		} else {
			sum += float64(r.Runs[l][i].Cycles)
		}
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AvgCycles averages analytics cycles with the given prefetch setting.
func (r *Fig10Result) AvgCycles(l imdb.Layout, prefetch bool) float64 {
	return r.avgOver(l, func(p Fig10Point) bool { return p.Prefetch == prefetch }, false)
}

// AvgEnergy averages analytics energy with the given prefetch setting.
func (r *Fig10Result) AvgEnergy(l imdb.Layout, prefetch bool) float64 {
	return r.avgOver(l, func(p Fig10Point) bool { return p.Prefetch == prefetch }, true)
}

// Fig11Result holds Figure 11: HTAP analytics time and transaction
// throughput, without and with prefetching.
type Fig11Result struct {
	Opts Options
	// Indexed by prefetch (0 = off, 1 = on), then layout.
	AnalyticsCycles map[imdb.Layout][2]uint64
	TxnThroughput   map[imdb.Layout][2]float64 // transactions per second
}

// RunFig11 reproduces Figure 11: one analytics thread (sum of one column)
// and one transaction thread (1 read-only + 1 write-only field) run
// concurrently on two cores sharing the L2 and memory controller; the
// transaction thread runs until the analytics query completes.
func RunFig11(opts Options) (*Fig11Result, error) {
	res := &Fig11Result{
		Opts:            opts,
		AnalyticsCycles: map[imdb.Layout][2]uint64{},
		TxnThroughput:   map[imdb.Layout][2]float64{},
	}
	type htapRun struct {
		cycles     uint64
		throughput float64
	}
	runs := make([]htapRun, len(layouts)*2)
	err := opts.pool().Run(len(runs), func(j int) error {
		layout, prefetch := layouts[j/2], j%2 == 1
		_, db, q, mem, err := newRig(runConfig{layout: layout, tuples: opts.Tuples, cores: 2, prefetch: prefetch,
			label: fmt.Sprintf("fig11/%v/prefetch=%v", layout, prefetch), capture: opts.Capture})
		if err != nil {
			return err
		}
		var ar imdb.AnalyticsResult
		as, err := db.AnalyticsStream([]int{0}, &ar)
		if err != nil {
			return err
		}
		var tr imdb.TxnResult
		ts, err := db.TransactionStream(imdb.TxnMix{RO: 1, WO: 1}, 0 /* unbounded */, opts.Seed, &tr)
		if err != nil {
			return err
		}

		txnCore := cpu.New(1, q, mem, ts, nil)
		txnCore.SetNoInline(noInline)
		var analyticsDone sim.Cycle
		anaCore := cpu.New(0, q, mem, as, func(now sim.Cycle) {
			analyticsDone = now
			txnCore.Stop()
		})
		anaCore.SetNoInline(noInline)
		anaCore.Start(0)
		txnCore.Start(0)
		cores := []*cpu.Core{anaCore, txnCore} // index == core ID
		rt := takeTelemetry(q)
		rt.start(q, mem, cores)
		q.Run()
		rt.finish(q, cores)

		// The analytics thread mutates nothing, so the column sum must
		// still be exact even with concurrent writers to other fields:
		// the transaction mix writes one random field, which may be
		// column 0, so only check when it cannot be.
		_ = ar

		seconds := float64(analyticsDone) / 4e9
		runs[j] = htapRun{
			cycles:     uint64(analyticsDone),
			throughput: float64(tr.Completed) / seconds,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for li, layout := range layouts {
		var ac [2]uint64
		var tp [2]float64
		for pi := 0; pi < 2; pi++ {
			ac[pi] = runs[li*2+pi].cycles
			tp[pi] = runs[li*2+pi].throughput
		}
		res.AnalyticsCycles[layout] = ac
		res.TxnThroughput[layout] = tp
	}
	return res, nil
}

// AnalyticsTable renders Figure 11a.
func (r *Fig11Result) AnalyticsTable() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 11a: HTAP analytics performance, %d tuples (Mcycles)", r.Opts.Tuples),
		"layout", "w/o prefetch", "with prefetch")
	for _, l := range layouts {
		t.Add(l.String(), stats.Mcycles(r.AnalyticsCycles[l][0]), stats.Mcycles(r.AnalyticsCycles[l][1]))
	}
	return t
}

// ThroughputTable renders Figure 11b.
func (r *Fig11Result) ThroughputTable() *stats.Table {
	t := stats.NewTable(
		"Figure 11b: HTAP transaction throughput (millions/sec)",
		"layout", "w/o prefetch", "with prefetch")
	for _, l := range layouts {
		t.Add(l.String(),
			fmt.Sprintf("%.2f", r.TxnThroughput[l][0]/1e6),
			fmt.Sprintf("%.2f", r.TxnThroughput[l][1]/1e6))
	}
	return t
}

// Fig12Result summarises performance and energy (Figure 12) from the
// Figure 9 and Figure 10 results.
type Fig12Result struct {
	Fig9  *Fig9Result
	Fig10 *Fig10Result
}

// RunFig12 reproduces Figure 12 by averaging the transaction workload
// (Figure 9) and the analytics workload with prefetching (Figure 10).
func RunFig12(opts Options) (*Fig12Result, error) {
	f9, err := RunFig9(opts)
	if err != nil {
		return nil, err
	}
	f10, err := RunFig10(opts)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Fig9: f9, Fig10: f10}, nil
}

// PerfTable renders Figure 12a (average execution time).
func (r *Fig12Result) PerfTable() *stats.Table {
	t := stats.NewTable(
		"Figure 12a: average performance (Mcycles)",
		"workload", "Row Store", "Column Store", "GS-DRAM")
	t.Add("Transactions",
		stats.Mcycles(uint64(r.Fig9.AvgCycles(imdb.RowStore))),
		stats.Mcycles(uint64(r.Fig9.AvgCycles(imdb.ColumnStore))),
		stats.Mcycles(uint64(r.Fig9.AvgCycles(imdb.GSStore))))
	t.Add("Analytics (prefetch)",
		stats.Mcycles(uint64(r.Fig10.AvgCycles(imdb.RowStore, true))),
		stats.Mcycles(uint64(r.Fig10.AvgCycles(imdb.ColumnStore, true))),
		stats.Mcycles(uint64(r.Fig10.AvgCycles(imdb.GSStore, true))))
	return t
}

// EnergyTable renders Figure 12b (average energy).
func (r *Fig12Result) EnergyTable() *stats.Table {
	t := stats.NewTable(
		"Figure 12b: average energy (mJ)",
		"workload", "Row Store", "Column Store", "GS-DRAM")
	t.Addf("Transactions",
		r.Fig9.AvgEnergy(imdb.RowStore),
		r.Fig9.AvgEnergy(imdb.ColumnStore),
		r.Fig9.AvgEnergy(imdb.GSStore))
	t.Addf("Analytics (prefetch)",
		r.Fig10.AvgEnergy(imdb.RowStore, true),
		r.Fig10.AvgEnergy(imdb.ColumnStore, true),
		r.Fig10.AvgEnergy(imdb.GSStore, true))
	t.Addf("Analytics (no prefetch)",
		r.Fig10.AvgEnergy(imdb.RowStore, false),
		r.Fig10.AvgEnergy(imdb.ColumnStore, false),
		r.Fig10.AvgEnergy(imdb.GSStore, false))
	return t
}

// EnergyBreakdownTable splits the prefetched-analytics energy into DRAM
// and processor components per layout — the DRAMPower-vs-McPAT split the
// paper's §5.1 energy discussion draws on.
func (r *Fig12Result) EnergyBreakdownTable() *stats.Table {
	t := stats.NewTable(
		"Figure 12b detail: analytics (prefetch) energy breakdown (mJ)",
		"layout", "DRAM commands", "DRAM background+refresh", "CPU dynamic", "CPU static", "total")
	// Point 2 of Fig10 runs is {1 column, prefetch}; average 1 and 2
	// column points for each layout.
	for _, l := range layouts {
		var cmd, bg, dyn, st, tot float64
		n := 0
		for i, pt := range r.Fig10.Points {
			if !pt.Prefetch {
				continue
			}
			e := r.Fig10.Runs[l][i].Energy
			cmd += e.DRAMCommandMJ
			bg += e.DRAMBackgroundMJ + e.DRAMRefreshMJ
			dyn += e.CPUDynamicMJ
			st += e.CPUStaticMJ
			tot += e.TotalMJ()
			n++
		}
		f := float64(n)
		t.Addf(l.String(), cmd/f, bg/f, dyn/f, st/f, tot/f)
	}
	return t
}
