package bench

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
	"gsdram/internal/stats"
)

// ChannelsResult reports memory-system scaling: two concurrent row-store
// scans on one vs. two DDR3-1600 channels. On one channel the interleaved
// streams fight over the same eight banks (row-buffer conflicts and bus
// serialisation); a second channel doubles banks and bus width.
type ChannelsResult struct {
	Tuples int
	// Indexed by channel count - 1 (1 and 2 channels).
	Cycles [2]uint64
	GBs    [2]float64 // achieved data bandwidth
}

// specForChannels returns the Table 1 organisation widened to n channels
// at constant total capacity.
func specForChannels(n int) addrmap.Spec {
	s := addrmap.Default
	s.Channels = n
	s.Rows = s.Rows / n
	return s
}

// RunChannels measures two concurrent prefetched row-store column scans
// (one per core, over disjoint tables) on 1 and 2 channels.
func RunChannels(opts Options) (*ChannelsResult, error) {
	res := &ChannelsResult{Tuples: opts.Tuples}
	channelCounts := []int{1, 2}
	err := opts.pool().Run(len(channelCounts), func(i int) error {
		channels := channelCounts[i]
		spec := specForChannels(channels)
		mach, err := machine.New(spec, gsdram.GS844)
		if err != nil {
			return err
		}
		dbA, err := imdb.New(mach, imdb.RowStore, opts.Tuples)
		if err != nil {
			return err
		}
		dbB, err := imdb.New(mach, imdb.RowStore, opts.Tuples)
		if err != nil {
			return err
		}
		q := &sim.EventQueue{}
		cfg := defaultConfig(2)
		cfg.EnablePrefetch = true
		cfg.Mem.Spec = spec
		mem, err := memsys.New(cfg, q)
		if err != nil {
			return err
		}
		var arA, arB imdb.AnalyticsResult
		sA, err := dbA.AnalyticsStream([]int{0}, &arA)
		if err != nil {
			return err
		}
		sB, err := dbB.AnalyticsStream([]int{0}, &arB)
		if err != nil {
			return err
		}
		m := runStreams(q, mem, []cpu.Stream{sA, sB})
		checkSums(&arA, opts.Tuples, []int{0})
		checkSums(&arB, opts.Tuples, []int{0})
		res.Cycles[i] = m.Cycles
		bytes := float64(m.Ctrl.ReadsServed) * 64
		seconds := float64(m.Cycles) / 4e9
		res.GBs[i] = bytes / seconds / 1e9
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the channel-scaling experiment.
func (r *ChannelsResult) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Channel scaling: two concurrent prefetched row-store scans, %d tuples each", r.Tuples),
		"channels", "cycles (M)", "achieved bandwidth (GB/s)", "speedup")
	for i := range r.Cycles {
		t.Add(fmt.Sprint(i+1), stats.Mcycles(r.Cycles[i]),
			fmt.Sprintf("%.2f", r.GBs[i]),
			stats.Ratio(float64(r.Cycles[0]), float64(r.Cycles[i])))
	}
	return t
}
