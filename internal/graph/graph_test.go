package graph

import (
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

func newGraph(t *testing.T, layout Layout, n, deg int) *Graph {
	t.Helper()
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRandom(m, layout, n, deg, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runStream(t *testing.T, s cpu.Stream) (cpu.Stats, *memsys.System) {
	t.Helper()
	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(1), q)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.New(0, q, mem, s, nil)
	core.Start(0)
	q.Run()
	if !core.Stats().Finished {
		t.Fatal("core did not finish")
	}
	return core.Stats(), mem
}

func TestNewRandomValidation(t *testing.T) {
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRandom(m, AoS, 12, 4, 1); err == nil {
		t.Error("n not multiple of 8 accepted")
	}
	if _, err := NewRandom(m, AoS, 0, 4, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewRandom(m, AoS, 64, 0, 1); err == nil {
		t.Error("avgDeg=0 accepted")
	}
	if _, err := NewRandom(m, Layout(9), 64, 4, 1); err == nil {
		t.Error("bad layout accepted")
	}
}

func TestLayoutString(t *testing.T) {
	if AoS.String() != "AoS" || SoA.String() != "SoA" || GS.String() != "GS-DRAM" || Layout(9).String() != "unknown" {
		t.Error("layout names wrong")
	}
}

func TestGraphStructure(t *testing.T) {
	g := newGraph(t, AoS, 64, 4)
	if g.N() != 64 {
		t.Fatalf("n = %d", g.N())
	}
	total := 0
	for u := 0; u < g.N(); u++ {
		d := g.OutDegree(u)
		if d < 1 {
			t.Fatalf("vertex %d has degree %d", u, d)
		}
		total += d
	}
	if total != g.Edges() {
		t.Fatalf("degree sum %d != edge count %d", total, g.Edges())
	}
	// Degree field matches structure.
	for u := 0; u < g.N(); u++ {
		d, err := g.ReadField(u, FieldDegree)
		if err != nil {
			t.Fatal(err)
		}
		if int(d) != g.OutDegree(u) {
			t.Fatalf("vertex %d degree field %d != %d", u, d, g.OutDegree(u))
		}
	}
}

func TestSameSeedSameGraph(t *testing.T) {
	a := newGraph(t, AoS, 64, 4)
	b := newGraph(t, SoA, 64, 4)
	if a.Edges() != b.Edges() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestFieldRoundTripAllLayouts(t *testing.T) {
	for _, l := range []Layout{AoS, SoA, GS} {
		g := newGraph(t, l, 32, 3)
		for u := 0; u < 32; u++ {
			for f := 0; f < FieldsPerVertex; f++ {
				if err := g.WriteField(u, f, uint64(u*100+f)); err != nil {
					t.Fatal(err)
				}
			}
		}
		for u := 0; u < 32; u++ {
			for f := 0; f < FieldsPerVertex; f++ {
				v, err := g.ReadField(u, f)
				if err != nil {
					t.Fatal(err)
				}
				if v != uint64(u*100+f) {
					t.Fatalf("%v: field(%d,%d) = %d", l, u, f, v)
				}
			}
		}
	}
}

func TestPageRankFunctionalAgreement(t *testing.T) {
	for _, l := range []Layout{AoS, SoA, GS} {
		g := newGraph(t, l, 64, 4)
		want, err := g.ReferenceRankSum(3)
		if err != nil {
			t.Fatal(err)
		}
		var res PageRankResult
		s, err := g.PageRankStream(3, &res)
		if err != nil {
			t.Fatal(err)
		}
		runStream(t, s)
		if res.RankSum != want {
			t.Fatalf("%v: rank sum %d, want %d", l, res.RankSum, want)
		}
	}
}

func TestPageRankStreamValidation(t *testing.T) {
	g := newGraph(t, AoS, 32, 3)
	if _, err := g.PageRankStream(0, nil); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestUpdateStreamValidation(t *testing.T) {
	g := newGraph(t, AoS, 32, 3)
	if _, err := g.UpdateStream(0, 2, 1); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := g.UpdateStream(5, 0, 1); err == nil {
		t.Error("zero fields accepted")
	}
	if _, err := g.UpdateStream(5, 9, 1); err == nil {
		t.Error("too many fields accepted")
	}
}

func TestUpdateStreamMutatesFields(t *testing.T) {
	g := newGraph(t, GS, 32, 3)
	before, _ := g.ReadField(0, 0)
	_ = before
	s, err := g.UpdateStream(200, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := runStream(t, s)
	if st.Stores == 0 || st.Loads == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// With 200 updates over 32 vertices, at least one field moved.
	moved := false
	for u := 0; u < 32 && !moved; u++ {
		v, _ := g.ReadField(u, 0)
		if v != 1000 && v != 0 { // rank field was 1000 initially
			moved = true
		}
	}
	if !moved {
		t.Fatal("updates did not mutate any vertex")
	}
}

// TestScanPhaseFetchShape: per contribution scan, AoS fetches ~1 line per
// vertex while SoA and GS fetch ~2 lines per 8 vertices (rank + degree
// planes).
func TestScanPhaseFetchShape(t *testing.T) {
	const n = 512
	reads := map[Layout]uint64{}
	for _, l := range []Layout{AoS, SoA, GS} {
		g := newGraph(t, l, n, 1)
		s, err := g.PageRankStream(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, mem := runStream(t, s)
		reads[l] = mem.Stats().DRAMReads
	}
	// AoS must fetch substantially more than SoA and GS; GS ~ SoA.
	if float64(reads[AoS]) < 1.5*float64(reads[GS]) {
		t.Errorf("AoS fetched %d lines, GS %d; expected AoS >> GS", reads[AoS], reads[GS])
	}
	ratio := float64(reads[GS]) / float64(reads[SoA])
	if ratio > 1.4 || ratio < 0.6 {
		t.Errorf("GS fetched %d lines vs SoA %d; want parity", reads[GS], reads[SoA])
	}
}

// TestUpdatePhaseFetchShape: random 3-field updates — SoA fetches ~3
// lines per update, AoS and GS ~1.
func TestUpdatePhaseFetchShape(t *testing.T) {
	const n = 8192
	reads := map[Layout]uint64{}
	for _, l := range []Layout{AoS, SoA, GS} {
		g := newGraph(t, l, n, 1)
		s, err := g.UpdateStream(300, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		_, mem := runStream(t, s)
		reads[l] = mem.Stats().DRAMReads
	}
	if reads[SoA] < reads[AoS]*2 {
		t.Errorf("SoA fetched %d lines, AoS %d; expected SoA ~ 3x AoS", reads[SoA], reads[AoS])
	}
	ratio := float64(reads[GS]) / float64(reads[AoS])
	if ratio > 1.4 || ratio < 0.6 {
		t.Errorf("GS fetched %d lines vs AoS %d; want parity", reads[GS], reads[AoS])
	}
}
