package graph

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/sim"
)

// This file is the pointer-chasing traversal of the indexed access path:
// every vertex stores a "next" pointer (a random single-cycle
// permutation, see InitPtrChase) in FieldDist, and a batch of chains
// walks the pointers in lockstep. A
// single chain is inherently serial — each hop's address depends on the
// previous hop's value — so the kernel uses the standard batched
// formulation: B independent chains advance together, and each step's B
// next-pointer reads form one index vector.
//
// The index vectors are data-dependent and unstructured (wherever the
// chains happen to be), so like SpMV this is a fallback-dominated
// gatherv workload: the win over scalar loads is burst batching and
// bank-level parallelism, while pattern gathers contribute only when
// chains coincidentally cluster into a stride-8 group.

// PtrChaseResult accumulates the functional outcome; every layout and
// access variant of the same (chains, steps, seed) must agree on it.
type PtrChaseResult struct {
	Hops     uint64
	Checksum uint64 // FNV-style fold of every pointer value read
}

// InitPtrChase writes a seeded random single-cycle permutation (Sattolo)
// into every vertex's FieldDist, linking the whole table into one
// Hamiltonian pointer cycle — the classic pointer-chasing structure.
// A single out-neighbour per vertex would converge chains into short
// cycles whose working set caches trivially; the n-cycle guarantees a
// chain touches a fresh vertex every hop, so the chase working set is
// the entire table.
func (g *Graph) InitPtrChase(seed uint64) error {
	next := make([]int32, g.n)
	for u := range next {
		next[u] = int32(u)
	}
	rng := sim.NewRand(seed)
	for i := g.n - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	for u := 0; u < g.n; u++ {
		if err := g.WriteField(u, FieldDist, uint64(next[u])); err != nil {
			return err
		}
	}
	return nil
}

// PtrChaseStream returns the instruction stream of `steps` lockstep hops
// of `chains` pointer chains starting at seeded random vertices. With
// gatherv each step issues one indexed gather over the chain heads'
// next-pointer fields; without, each head is a separate scalar load —
// the per-element fallback the speedup claims are measured against.
// Call InitPtrChase first (the stream reads FieldDist functionally).
func (g *Graph) PtrChaseStream(chains, steps int, seed uint64, gatherv bool, res *PtrChaseResult) (cpu.Stream, error) {
	if chains <= 0 || steps <= 0 {
		return nil, fmt.Errorf("graph: ptrchase chains (%d) and steps (%d) must be positive", chains, steps)
	}
	if res == nil {
		res = &PtrChaseResult{}
	}
	rng := sim.NewRand(seed)
	cur := make([]int, chains)
	for i := range cur {
		cur[i] = rng.Intn(g.n)
	}
	alt := gsdram.Pattern(0)
	shuffled := g.layout == GS
	if shuffled {
		alt = ScanPattern
	}

	step := 0
	var pending []cpu.Op

	emitStep := func() {
		addrs := make([]addrmap.Addr, chains)
		heads := make([]int, chains)
		copy(heads, cur)
		for i, u := range heads {
			addrs[i] = g.FieldAddr(u, FieldDist)
			v, err := g.ReadField(u, FieldDist)
			if err != nil {
				panic(fmt.Sprintf("graph: ptrchase functional read failed: %v", err))
			}
			res.Checksum = res.Checksum*1099511628211 ^ v
			res.Hops++
			cur[i] = int(v)
		}
		if gatherv {
			pending = append(pending, cpu.GatherV(addrs, shuffled, alt, 0x2500), cpu.Compute(chains))
		} else {
			for _, u := range heads {
				pending = append(pending, g.recordLoad(u, FieldDist, 0x2500), cpu.Compute(1))
			}
		}
	}

	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if step >= steps {
				return cpu.Op{}, false
			}
			emitStep()
			step++
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}
