// Package graph implements the graph-processing use case of paper §5.3:
// "operations that update individual nodes in the graph have different
// access patterns than those that traverse the graph."
//
// Vertices carry eight 8-byte fields (one 64-byte record). A
// PageRank-style kernel alternates three phases with opposite layout
// preferences:
//
//   - contribution scan: one field of every vertex, sequential — favours
//     a struct-of-arrays (SoA) layout or a GS-DRAM gather;
//   - edge phase: random reads of a packed per-vertex value through the
//     CSR adjacency — layout-neutral;
//   - vertex update: several fields of individual vertices — favours an
//     array-of-structs (AoS) layout.
//
// As with the database workload, GS-DRAM stores records AoS in shuffled
// pages and serves both the scan (pattern 7) and the update (pattern 0)
// at full density.
package graph

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/sim"
)

// FieldsPerVertex is the vertex record width: 8 fields x 8 bytes.
const FieldsPerVertex = 8

// Well-known field indices of the vertex record.
const (
	FieldRank   = 0
	FieldDegree = 1
	FieldFlags  = 2
	FieldDist   = 3
)

// ScanPattern gathers one field across 8 consecutive vertices.
const ScanPattern gsdram.Pattern = 7

// Layout selects the physical organisation of the vertex table.
type Layout int

const (
	// AoS stores each vertex's record contiguously (array of structs).
	AoS Layout = iota
	// SoA stores each field contiguously (struct of arrays).
	SoA
	// GS stores records AoS in pattmalloc'd pages: updates use pattern 0,
	// scans use pattern 7.
	GS
)

func (l Layout) String() string {
	switch l {
	case AoS:
		return "AoS"
	case SoA:
		return "SoA"
	case GS:
		return "GS-DRAM"
	default:
		return "unknown"
	}
}

// Graph is a CSR directed graph with a vertex property table in machine
// memory.
type Graph struct {
	mach   *machine.Machine
	layout Layout
	n      int

	offsets []int32 // CSR row offsets, len n+1
	edges   []int32 // CSR column indices

	vertBase addrmap.Addr                  // AoS / GS record array
	colBase  [FieldsPerVertex]addrmap.Addr // SoA field arrays
	// contribBase is the packed contributions array used by the edge
	// phase; identical in every layout.
	contribBase addrmap.Addr
	// edgeBase backs the adjacency array so edge streaming costs memory
	// traffic too.
	edgeBase addrmap.Addr
}

// NewRandom builds a random directed graph with n vertices and roughly
// avgDeg out-edges per vertex, and a vertex table in the given layout.
// n must be a multiple of 8.
func NewRandom(mach *machine.Machine, layout Layout, n, avgDeg int, seed uint64) (*Graph, error) {
	if n <= 0 || n%8 != 0 {
		return nil, fmt.Errorf("graph: n must be a positive multiple of 8, got %d", n)
	}
	if avgDeg <= 0 {
		return nil, fmt.Errorf("graph: avgDeg must be positive, got %d", avgDeg)
	}
	g := &Graph{mach: mach, layout: layout, n: n}
	rng := sim.NewRand(seed)

	// Degrees in [1, 2*avgDeg-1] so every vertex has at least one edge.
	degs := make([]int, n)
	total := 0
	for i := range degs {
		degs[i] = 1 + rng.Intn(2*avgDeg-1)
		total += degs[i]
	}
	g.offsets = make([]int32, n+1)
	g.edges = make([]int32, total)
	pos := 0
	for u := 0; u < n; u++ {
		g.offsets[u] = int32(pos)
		for d := 0; d < degs[u]; d++ {
			g.edges[pos] = int32(rng.Intn(n))
			pos++
		}
	}
	g.offsets[n] = int32(pos)

	var err error
	switch layout {
	case AoS:
		g.vertBase, err = mach.AS.Malloc(n * 64)
	case GS:
		g.vertBase, err = mach.AS.PattMalloc(n*64, ScanPattern)
	case SoA:
		for f := 0; f < FieldsPerVertex; f++ {
			g.colBase[f], err = mach.AS.Malloc(n * 8)
			if err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("graph: unknown layout %d", layout)
	}
	if err != nil {
		return nil, err
	}
	if g.contribBase, err = mach.AS.Malloc(n * 8); err != nil {
		return nil, err
	}
	if g.edgeBase, err = mach.AS.Malloc(total * 8); err != nil {
		return nil, err
	}

	// Initial state: rank = 1000 (fixed point), degree, zero elsewhere.
	for u := 0; u < n; u++ {
		if err := g.WriteField(u, FieldRank, 1000); err != nil {
			return nil, err
		}
		if err := g.WriteField(u, FieldDegree, uint64(degs[u])); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// N returns the vertex count.
func (g *Graph) N() int { return g.n }

// Layout returns the table layout.
func (g *Graph) Layout() Layout { return g.layout }

// Edges returns the total edge count.
func (g *Graph) Edges() int { return len(g.edges) }

// OutDegree returns vertex u's out-degree.
func (g *Graph) OutDegree(u int) int { return int(g.offsets[u+1] - g.offsets[u]) }

// FieldAddr returns the byte address of field f of vertex u.
func (g *Graph) FieldAddr(u, f int) addrmap.Addr {
	if g.layout == SoA {
		return g.colBase[f] + addrmap.Addr(u*8)
	}
	return g.vertBase + addrmap.Addr(u*64+f*8)
}

// ReadField reads field f of vertex u functionally.
func (g *Graph) ReadField(u, f int) (uint64, error) {
	return g.mach.ReadWord(g.FieldAddr(u, f))
}

// WriteField writes field f of vertex u functionally.
func (g *Graph) WriteField(u, f int, v uint64) error {
	return g.mach.WriteWord(g.FieldAddr(u, f), v)
}

func (g *Graph) contribAddr(u int) addrmap.Addr { return g.contribBase + addrmap.Addr(u*8) }
func (g *Graph) edgeAddr(i int) addrmap.Addr    { return g.edgeBase + addrmap.Addr(i*8) }

// gatherLineAddr is the pattern-7 line gathering field f of the 8-vertex
// group containing u (AoS base is page aligned, so the imdb closed form
// applies).
func (g *Graph) gatherLineAddr(u, f int) addrmap.Addr {
	return g.vertBase + addrmap.Addr(((u&^7)+f)*64)
}

func (g *Graph) fieldLoad(u, f int, pc uint64) cpu.Op {
	if g.layout == GS {
		// Scans use the gathered line; 8 consecutive vertices share it.
		return cpu.PattLoad(g.gatherLineAddr(u, f), ScanPattern, pc)
	}
	return cpu.Load(g.FieldAddr(u, f), pc)
}

func (g *Graph) recordLoad(u, f int, pc uint64) cpu.Op {
	op := cpu.Load(g.FieldAddr(u, f), pc)
	if g.layout == GS {
		op.Shuffled = true
		op.AltPattern = ScanPattern
	}
	return op
}

// fieldStore is the store counterpart of fieldLoad: sequential
// whole-plane updates on the GS layout scatter through the gathered line
// (pattstore), so eight consecutive vertices share one line.
func (g *Graph) fieldStore(u, f int, pc uint64) cpu.Op {
	if g.layout == GS {
		return cpu.PattStore(g.gatherLineAddr(u, f), ScanPattern, pc)
	}
	return cpu.Store(g.FieldAddr(u, f), pc)
}

func (g *Graph) recordStore(u, f int, pc uint64) cpu.Op {
	op := cpu.Store(g.FieldAddr(u, f), pc)
	if g.layout == GS {
		op.Shuffled = true
		op.AltPattern = ScanPattern
	}
	return op
}

// PageRankResult holds the functional outcome of iterations.
type PageRankResult struct {
	// RankSum is the sum of all ranks after the run (fixed-point).
	RankSum uint64
}

// PageRankStream returns an instruction stream executing `iters`
// PageRank-style iterations:
//
//  1. contribution scan: contrib[u] = rank(u) / degree(u) — reads two
//     fields of every vertex sequentially, writes the packed array;
//  2. edge phase: for every edge (u,v), acc[u] += contrib[v] — streams
//     the adjacency and reads contributions at random;
//  3. update: rank(u) = base + damped accumulator, flags(u) updated —
//     writes two fields of every vertex.
//
// All arithmetic is integer (fixed-point) so results verify exactly.
func (g *Graph) PageRankStream(iters int, res *PageRankResult) (cpu.Stream, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("graph: iters must be positive, got %d", iters)
	}
	if res == nil {
		res = &PageRankResult{}
	}

	contrib := make([]uint64, g.n)
	acc := make([]uint64, g.n)

	type state struct {
		iter, phase, u, e int
	}
	st := state{}
	var pending []cpu.Op

	emitScan := func(u int) {
		rank, err := g.ReadField(u, FieldRank)
		if err != nil {
			panic(err)
		}
		deg, err := g.ReadField(u, FieldDegree)
		if err != nil {
			panic(err)
		}
		contrib[u] = rank / deg
		if werr := g.mach.WriteWord(g.contribAddr(u), contrib[u]); werr != nil {
			panic(werr)
		}
		// Two field loads + contribution store + divide.
		pending = append(pending,
			g.fieldLoad(u, FieldRank, 0x2000),
			g.fieldLoad(u, FieldDegree, 0x2001),
			cpu.Compute(4),
			cpu.Store(g.contribAddr(u), 0x2002),
		)
	}

	emitEdges := func(u int) {
		start, end := int(g.offsets[u]), int(g.offsets[u+1])
		for e := start; e < end; e++ {
			v := int(g.edges[e])
			acc[u] += contrib[v]
			pending = append(pending,
				cpu.Load(g.edgeAddr(e), 0x2100),
				cpu.Load(g.contribAddr(v), 0x2101),
				cpu.Compute(2),
			)
		}
	}

	emitUpdate := func(u int) {
		newRank := 150 + (acc[u]*85)/100
		acc[u] = 0
		if err := g.WriteField(u, FieldRank, newRank); err != nil {
			panic(err)
		}
		if err := g.WriteField(u, FieldFlags, uint64(st.iter+1)); err != nil {
			panic(err)
		}
		pending = append(pending,
			cpu.Compute(5),
			g.fieldLoad(u, FieldRank, 0x2200),
			g.fieldStore(u, FieldRank, 0x2201),
			g.fieldStore(u, FieldFlags, 0x2202),
		)
	}

	finished := false
	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if finished {
				return cpu.Op{}, false
			}
			switch st.phase {
			case 0:
				emitScan(st.u)
			case 1:
				emitEdges(st.u)
			case 2:
				emitUpdate(st.u)
			}
			st.u++
			if st.u >= g.n {
				st.u = 0
				st.phase++
				if st.phase == 3 {
					st.phase = 0
					st.iter++
					if st.iter >= iters {
						finished = true
						for u := 0; u < g.n; u++ {
							r, err := g.ReadField(u, FieldRank)
							if err != nil {
								panic(err)
							}
							res.RankSum += r
						}
					}
				}
			}
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}

// UpdateStream returns a stream of `count` random single-vertex updates
// touching `fields` fields each — the paper's "update individual nodes"
// pattern, which favours AoS records.
func (g *Graph) UpdateStream(count, fields int, seed uint64) (cpu.Stream, error) {
	if fields <= 0 || fields > FieldsPerVertex {
		return nil, fmt.Errorf("graph: fields must be in [1,%d], got %d", FieldsPerVertex, fields)
	}
	if count <= 0 {
		return nil, fmt.Errorf("graph: count must be positive, got %d", count)
	}
	rng := sim.NewRand(seed)
	done := 0
	var pending []cpu.Op
	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if done >= count {
				return cpu.Op{}, false
			}
			u := rng.Intn(g.n)
			pending = append(pending, cpu.Compute(8))
			for f := 0; f < fields; f++ {
				v, err := g.ReadField(u, f)
				if err != nil {
					panic(err)
				}
				if err := g.WriteField(u, f, v+1); err != nil {
					panic(err)
				}
				pending = append(pending,
					g.recordLoad(u, f, 0x2300+uint64(f)),
					g.recordStore(u, f, 0x2400+uint64(f)),
					cpu.Compute(2),
				)
			}
			done++
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}

// ReferenceRankSum computes the expected rank sum after `iters` PageRank
// iterations directly, for verifying PageRankStream's functional result.
func (g *Graph) ReferenceRankSum(iters int) (uint64, error) {
	rank := make([]uint64, g.n)
	deg := make([]uint64, g.n)
	for u := 0; u < g.n; u++ {
		r, err := g.ReadField(u, FieldRank)
		if err != nil {
			return 0, err
		}
		rank[u] = r
		deg[u] = uint64(g.OutDegree(u))
	}
	contrib := make([]uint64, g.n)
	for it := 0; it < iters; it++ {
		for u := 0; u < g.n; u++ {
			contrib[u] = rank[u] / deg[u]
		}
		for u := 0; u < g.n; u++ {
			var acc uint64
			for e := g.offsets[u]; e < g.offsets[u+1]; e++ {
				acc += contrib[g.edges[e]]
			}
			rank[u] = 150 + (acc*85)/100
		}
	}
	var sum uint64
	for u := 0; u < g.n; u++ {
		sum += rank[u]
	}
	return sum, nil
}
