package graph

import (
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/machine"
)

// TestInitPtrChaseSingleCycle checks the next pointers form one
// Hamiltonian cycle: following them from vertex 0 visits every vertex
// exactly once before returning.
func TestInitPtrChaseSingleCycle(t *testing.T) {
	const n = 256
	mach, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRandom(mach, AoS, n, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.InitPtrChase(99); err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	u := 0
	for i := 0; i < n; i++ {
		if seen[u] {
			t.Fatalf("vertex %d revisited after %d hops: cycle shorter than n", u, i)
		}
		seen[u] = true
		v, err := g.ReadField(u, FieldDist)
		if err != nil {
			t.Fatal(err)
		}
		if v >= n {
			t.Fatalf("next pointer of %d out of range: %d", u, v)
		}
		u = int(v)
	}
	if u != 0 {
		t.Fatalf("after %d hops landed on %d, want the start", n, u)
	}
}

// TestPtrChaseChecksumAcrossVariants checks every (layout, access path)
// combination walks the identical chains.
func TestPtrChaseChecksumAcrossVariants(t *testing.T) {
	const n, chains, steps = 512, 16, 40
	const seed = 21
	var want PtrChaseResult
	first := true
	for _, layout := range []Layout{AoS, SoA, GS} {
		for _, gatherv := range []bool{false, true} {
			mach, err := machine.Default()
			if err != nil {
				t.Fatal(err)
			}
			g, err := NewRandom(mach, layout, n, 4, seed)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.InitPtrChase(seed + 1); err != nil {
				t.Fatal(err)
			}
			var res PtrChaseResult
			s, err := g.PtrChaseStream(chains, steps, seed+2, gatherv, &res)
			if err != nil {
				t.Fatal(err)
			}
			gathers := 0
			ops := 0
			for {
				op, ok := s.Next()
				if !ok {
					break
				}
				if op.Kind == cpu.OpGatherV {
					gathers++
					if (layout == GS) != op.Shuffled {
						t.Fatalf("%v gatherv shuffled flag %v", layout, op.Shuffled)
					}
					if len(op.Addrs) != chains {
						t.Fatalf("gatherv vector length %d, want %d", len(op.Addrs), chains)
					}
				}
				ops++
				if ops > 1<<24 {
					t.Fatal("stream did not terminate")
				}
			}
			if gatherv && gathers != steps {
				t.Fatalf("%v: %d gathers, want one per step (%d)", layout, gathers, steps)
			}
			if !gatherv && gathers != 0 {
				t.Fatalf("%v scalar variant emitted %d gathers", layout, gathers)
			}
			if res.Hops != chains*steps {
				t.Fatalf("%v gatherv=%v: hops %d, want %d", layout, gatherv, res.Hops, chains*steps)
			}
			if first {
				want = res
				first = false
			} else if res != want {
				t.Fatalf("%v gatherv=%v: result %+v differs from first variant %+v", layout, gatherv, res, want)
			}
		}
	}
	if want.Checksum == 0 {
		t.Fatal("degenerate zero checksum")
	}
}

func TestPtrChaseRejectsBadArgs(t *testing.T) {
	mach, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewRandom(mach, AoS, 64, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.PtrChaseStream(0, 10, 1, true, nil); err == nil {
		t.Error("zero chains accepted")
	}
	if _, err := g.PtrChaseStream(10, 0, 1, true, nil); err == nil {
		t.Error("zero steps accepted")
	}
}
