package dram

import (
	"fmt"

	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// CmdKind identifies a DDR command.
type CmdKind int

const (
	CmdACT CmdKind = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
)

func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	default:
		return "???"
	}
}

// NoRow marks a bank with no open row.
const NoRow = -1

// bankState tracks one bank's open row and earliest-issue constraints.
type bankState struct {
	openRow    int
	actAllowed sim.Cycle
	preAllowed sim.Cycle
	rdAllowed  sim.Cycle
	wrAllowed  sim.Cycle
}

// Stats counts rank activity for bandwidth and energy accounting. It is
// the compatibility snapshot returned by Rank.Stats; live storage is the
// counters struct below.
type Stats struct {
	ACTs      uint64
	PREs      uint64
	Reads     uint64
	Writes    uint64
	Refreshes uint64
	// RowHits / RowMisses classify column commands by whether they found
	// their row already open (a PRE+ACT was needed otherwise).
	RowHits   uint64
	RowMisses uint64
	// BusBusy accumulates CPU cycles during which the data bus carried
	// data, for bandwidth-utilisation reporting.
	BusBusy sim.Cycle
}

// counters is the live counter storage (see internal/metrics).
type counters struct {
	ACTs      metrics.Counter
	PREs      metrics.Counter
	Reads     metrics.Counter
	Writes    metrics.Counter
	Refreshes metrics.Counter
	BusBusy   metrics.Counter
}

// Rank models one DRAM rank: a set of banks sharing a command bus, an
// address bus, and a data bus. All methods take and return times in CPU
// cycles; the Timing passed to NewRank must already be scaled.
type Rank struct {
	timing Timing
	banks  []bankState

	// Rank-global earliest-issue constraints for column commands (data-bus
	// occupancy, tCCD, read/write turnaround).
	rdAllowed sim.Cycle
	wrAllowed sim.Cycle

	// ACT rate limits: tRRD between any two ACTs, and at most four ACTs in
	// any tFAW window (actTimes is a ring of the last four ACT times).
	lastAct  sim.Cycle
	actTimes [4]sim.Cycle
	actHead  int
	actCount uint64

	// cmdBusFree is the earliest time the shared command bus can carry the
	// next command (one command per bus cycle).
	cmdBusFree sim.Cycle
	cmdCycle   sim.Cycle // command bus cycle length in CPU cycles

	ctr counters
}

// NewRank returns a rank with the given number of banks, all precharged.
// timing must already be scaled to CPU cycles; cmdCycle is the command-bus
// cycle length in CPU cycles (the same scale factor).
func NewRank(banks int, timing Timing, cmdCycle sim.Cycle) *Rank {
	r := &Rank{
		timing:   timing,
		banks:    make([]bankState, banks),
		cmdCycle: cmdCycle,
	}
	for i := range r.banks {
		r.banks[i].openRow = NoRow
	}
	return r
}

// Banks returns the number of banks in the rank.
func (r *Rank) Banks() int { return len(r.banks) }

// OpenRow returns the row currently open in a bank, or NoRow.
func (r *Rank) OpenRow(bank int) int { return r.banks[bank].openRow }

// Stats returns a copy of the activity counters.
func (r *Rank) Stats() Stats {
	return Stats{
		ACTs:      r.ctr.ACTs.Value(),
		PREs:      r.ctr.PREs.Value(),
		Reads:     r.ctr.Reads.Value(),
		Writes:    r.ctr.Writes.Value(),
		Refreshes: r.ctr.Refreshes.Value(),
		BusBusy:   sim.Cycle(r.ctr.BusBusy.Value()),
	}
}

// RegisterMetrics registers the rank's command counters under prefix
// (e.g. "dram.ch0.rk0"). No-op on a nil registry.
func (r *Rank) RegisterMetrics(reg *metrics.Registry, prefix string) {
	reg.RegisterCounter(prefix+".acts", &r.ctr.ACTs)
	reg.RegisterCounter(prefix+".pres", &r.ctr.PREs)
	reg.RegisterCounter(prefix+".reads", &r.ctr.Reads)
	reg.RegisterCounter(prefix+".writes", &r.ctr.Writes)
	reg.RegisterCounter(prefix+".refreshes", &r.ctr.Refreshes)
	reg.RegisterCounter(prefix+".bus_busy_cycles", &r.ctr.BusBusy)
}

// EarliestIssue returns the earliest cycle >= now at which the command
// could legally issue. For RD/WR the bank's row must already be open (and
// match is the caller's responsibility); for ACT the bank must be
// precharged.
func (r *Rank) EarliestIssue(kind CmdKind, bank int, now sim.Cycle) sim.Cycle {
	t := maxCycle(now, r.cmdBusFree)
	b := &r.banks[bank]
	switch kind {
	case CmdACT:
		t = maxCycle(t, b.actAllowed)
		if r.actCount > 0 {
			t = maxCycle(t, r.lastAct+sim.Cycle(r.timing.TRRD))
		}
		// tFAW: the 4th-previous ACT must be at least tFAW earlier.
		if r.actCount >= 4 {
			t = maxCycle(t, r.actTimes[r.actHead]+sim.Cycle(r.timing.TFAW))
		}
	case CmdPRE:
		t = maxCycle(t, b.preAllowed)
	case CmdRD:
		t = maxCycle(t, b.rdAllowed, r.rdAllowed)
	case CmdWR:
		t = maxCycle(t, b.wrAllowed, r.wrAllowed)
	case CmdREF:
		// All banks must be precharged and past their tRP.
		for i := range r.banks {
			t = maxCycle(t, r.banks[i].actAllowed)
		}
	}
	return t
}

// Issue applies the command at time t (which must come from EarliestIssue)
// and returns the time at which the command's effect completes: for RD/WR
// the end of the data burst, for ACT/PRE/REF the time the bank becomes
// usable for the natural next step.
//
// Issue panics on protocol violations (activating an open bank, reading a
// closed one): those are controller bugs, not runtime conditions.
func (r *Rank) Issue(kind CmdKind, bank, row int, t sim.Cycle) sim.Cycle {
	b := &r.banks[bank]
	r.cmdBusFree = t + r.cmdCycle
	tm := &r.timing
	switch kind {
	case CmdACT:
		if b.openRow != NoRow {
			panic(fmt.Sprintf("dram: ACT to bank %d with row %d open", bank, b.openRow))
		}
		b.openRow = row
		b.rdAllowed = maxCycle(b.rdAllowed, t+sim.Cycle(tm.TRCD))
		b.wrAllowed = maxCycle(b.wrAllowed, t+sim.Cycle(tm.TRCD))
		b.preAllowed = maxCycle(b.preAllowed, t+sim.Cycle(tm.TRAS))
		b.actAllowed = maxCycle(b.actAllowed, t+sim.Cycle(tm.TRC))
		r.lastAct = t
		r.actTimes[r.actHead] = t
		r.actHead = (r.actHead + 1) % len(r.actTimes)
		r.actCount++
		r.ctr.ACTs++
		return t + sim.Cycle(tm.TRCD)
	case CmdPRE:
		if b.openRow == NoRow {
			panic(fmt.Sprintf("dram: PRE to bank %d with no open row", bank))
		}
		b.openRow = NoRow
		b.actAllowed = maxCycle(b.actAllowed, t+sim.Cycle(tm.TRP))
		r.ctr.PREs++
		return t + sim.Cycle(tm.TRP)
	case CmdRD:
		if b.openRow == NoRow {
			panic(fmt.Sprintf("dram: RD to bank %d with no open row", bank))
		}
		dataEnd := t + sim.Cycle(tm.CL) + sim.Cycle(tm.TBL)
		b.preAllowed = maxCycle(b.preAllowed, t+sim.Cycle(tm.TRTP))
		r.rdAllowed = maxCycle(r.rdAllowed, t+sim.Cycle(tm.TCCD))
		r.wrAllowed = maxCycle(r.wrAllowed, t+sim.Cycle(tm.TRTW))
		r.ctr.Reads++
		r.ctr.BusBusy += metrics.Counter(tm.TBL)
		return dataEnd
	case CmdWR:
		if b.openRow == NoRow {
			panic(fmt.Sprintf("dram: WR to bank %d with no open row", bank))
		}
		dataEnd := t + sim.Cycle(tm.CWL) + sim.Cycle(tm.TBL)
		b.preAllowed = maxCycle(b.preAllowed, dataEnd+sim.Cycle(tm.TWR))
		b.rdAllowed = maxCycle(b.rdAllowed, dataEnd+sim.Cycle(tm.TWTR))
		r.rdAllowed = maxCycle(r.rdAllowed, dataEnd+sim.Cycle(tm.TWTR))
		r.wrAllowed = maxCycle(r.wrAllowed, t+sim.Cycle(tm.TCCD))
		r.ctr.Writes++
		r.ctr.BusBusy += metrics.Counter(tm.TBL)
		return dataEnd
	case CmdREF:
		for i := range r.banks {
			if r.banks[i].openRow != NoRow {
				panic(fmt.Sprintf("dram: REF with bank %d open", i))
			}
		}
		end := t + sim.Cycle(tm.TRFC)
		for i := range r.banks {
			r.banks[i].actAllowed = maxCycle(r.banks[i].actAllowed, end)
		}
		r.ctr.Refreshes++
		return end
	default:
		panic("dram: unknown command")
	}
}

// AnyBankOpen reports whether at least one bank has an open row — the
// active-standby condition for background energy accounting.
func (r *Rank) AnyBankOpen() bool {
	for i := range r.banks {
		if r.banks[i].openRow != NoRow {
			return true
		}
	}
	return false
}

func maxCycle(vs ...sim.Cycle) sim.Cycle {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
