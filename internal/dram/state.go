package dram

import (
	"fmt"

	"gsdram/internal/ckpt"
	"gsdram/internal/metrics"
	"gsdram/internal/sim"
)

// Save serializes the rank's full timing state — open rows, per-bank and
// rank-global earliest-issue constraints, the ACT rate-limit ring, the
// command-bus reservation — plus the activity counters. Restoring this
// exactly is what makes a resumed run issue every subsequent command at
// the same cycle the uninterrupted run would.
func (r *Rank) Save(w *ckpt.Writer) {
	w.Tag("rank")
	w.U32(uint32(len(r.banks)))
	for i := range r.banks {
		b := &r.banks[i]
		w.Int(b.openRow)
		w.U64(uint64(b.actAllowed))
		w.U64(uint64(b.preAllowed))
		w.U64(uint64(b.rdAllowed))
		w.U64(uint64(b.wrAllowed))
	}
	w.U64(uint64(r.rdAllowed))
	w.U64(uint64(r.wrAllowed))
	w.U64(uint64(r.lastAct))
	for _, t := range r.actTimes {
		w.U64(uint64(t))
	}
	w.Int(r.actHead)
	w.U64(r.actCount)
	w.U64(uint64(r.cmdBusFree))
	w.U64(r.ctr.ACTs.Value())
	w.U64(r.ctr.PREs.Value())
	w.U64(r.ctr.Reads.Value())
	w.U64(r.ctr.Writes.Value())
	w.U64(r.ctr.Refreshes.Value())
	w.U64(r.ctr.BusBusy.Value())
}

// Load restores state written by Save into a rank with the same bank
// count.
func (r *Rank) Load(rd *ckpt.Reader) error {
	rd.ExpectTag("rank")
	n := int(rd.U32())
	if rd.Err() != nil {
		return rd.Err()
	}
	if n != len(r.banks) {
		return fmt.Errorf("dram: checkpoint has %d banks, rank has %d", n, len(r.banks))
	}
	for i := range r.banks {
		r.banks[i] = bankState{
			openRow:    rd.Int(),
			actAllowed: sim.Cycle(rd.U64()),
			preAllowed: sim.Cycle(rd.U64()),
			rdAllowed:  sim.Cycle(rd.U64()),
			wrAllowed:  sim.Cycle(rd.U64()),
		}
	}
	r.rdAllowed = sim.Cycle(rd.U64())
	r.wrAllowed = sim.Cycle(rd.U64())
	r.lastAct = sim.Cycle(rd.U64())
	for i := range r.actTimes {
		r.actTimes[i] = sim.Cycle(rd.U64())
	}
	r.actHead = rd.Int()
	r.actCount = rd.U64()
	r.cmdBusFree = sim.Cycle(rd.U64())
	r.ctr = counters{
		ACTs:      metrics.Counter(rd.U64()),
		PREs:      metrics.Counter(rd.U64()),
		Reads:     metrics.Counter(rd.U64()),
		Writes:    metrics.Counter(rd.U64()),
		Refreshes: metrics.Counter(rd.U64()),
		BusBusy:   metrics.Counter(rd.U64()),
	}
	return rd.Err()
}
