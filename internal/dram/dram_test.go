package dram

import (
	"testing"

	"gsdram/internal/sim"
)

// scaled DDR3-1600 timing at a 4 GHz core (ratio 5).
func testTiming() Timing { return DDR3_1600().Scaled(5) }

func newTestRank() *Rank { return NewRank(8, testTiming(), 5) }

func TestScaled(t *testing.T) {
	base := DDR3_1600()
	s := base.Scaled(5)
	if s.CL != base.CL*5 || s.TRCD != base.TRCD*5 || s.TRFC != base.TRFC*5 || s.TREF != base.TREF*5 {
		t.Fatalf("Scaled(5) mismatch: %+v", s)
	}
}

func TestSpeedGradesMonotone(t *testing.T) {
	// Faster grades have shorter absolute latencies: compare in
	// nanoseconds (cycles x tCK).
	grades := []struct {
		name string
		t    Timing
		tck  float64
	}{
		{"1066", DDR3_1066(), 1.875},
		{"1333", DDR3_1333(), 1.5},
		{"1600", DDR3_1600(), 1.25},
		{"1866", DDR3_1866(), 1.071},
	}
	for _, g := range grades {
		if g.t.CL <= 0 || g.t.TRCD <= 0 || g.t.TRP <= 0 || g.t.TRAS <= g.t.TRCD || g.t.TRC < g.t.TRAS+g.t.TRP {
			t.Errorf("DDR3-%s timing implausible: %+v", g.name, g.t)
		}
	}
	// Bandwidth: burst time in ns must shrink with the grade.
	for i := 1; i < len(grades); i++ {
		prev := float64(grades[i-1].t.TBL) * grades[i-1].tck
		cur := float64(grades[i].t.TBL) * grades[i].tck
		if cur >= prev {
			t.Errorf("burst time did not shrink from DDR3-%s to DDR3-%s", grades[i-1].name, grades[i].name)
		}
	}
	// tRCD in ns is roughly constant across grades (same core array).
	for _, g := range grades {
		ns := float64(g.t.TRCD) * g.tck
		if ns < 12 || ns > 15 {
			t.Errorf("DDR3-%s tRCD = %.2f ns, outside the 12-15 ns device range", g.name, ns)
		}
	}
}

func TestCmdKindString(t *testing.T) {
	want := map[CmdKind]string{CmdACT: "ACT", CmdPRE: "PRE", CmdRD: "RD", CmdWR: "WR", CmdREF: "REF", CmdKind(9): "???"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestFirstACTIssuesImmediately(t *testing.T) {
	r := newTestRank()
	if got := r.EarliestIssue(CmdACT, 0, 0); got != 0 {
		t.Fatalf("first ACT earliest = %d, want 0 (no phantom tRRD/tFAW at start)", got)
	}
}

func TestRowHitReadLatency(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	at := r.EarliestIssue(CmdACT, 0, 0)
	rdReady := r.Issue(CmdACT, 0, 42, at)
	if rdReady != at+sim.Cycle(tm.TRCD) {
		t.Fatalf("ACT ready time = %d, want tRCD = %d", rdReady, tm.TRCD)
	}
	if r.OpenRow(0) != 42 {
		t.Fatalf("open row = %d, want 42", r.OpenRow(0))
	}
	rt := r.EarliestIssue(CmdRD, 0, rdReady)
	dataEnd := r.Issue(CmdRD, 0, 42, rt)
	want := rt + sim.Cycle(tm.CL) + sim.Cycle(tm.TBL)
	if dataEnd != want {
		t.Fatalf("read data end = %d, want %d", dataEnd, want)
	}
}

func TestReadBeforeRCDBlocked(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	r.Issue(CmdACT, 0, 1, 0)
	if got := r.EarliestIssue(CmdRD, 0, 0); got != sim.Cycle(tm.TRCD) {
		t.Fatalf("RD after ACT earliest = %d, want tRCD = %d", got, tm.TRCD)
	}
}

func TestPrechargeRespectsTRAS(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	r.Issue(CmdACT, 0, 1, 0)
	if got := r.EarliestIssue(CmdPRE, 0, 0); got != sim.Cycle(tm.TRAS) {
		t.Fatalf("PRE earliest = %d, want tRAS = %d", got, tm.TRAS)
	}
}

func TestRowCycleTRC(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	r.Issue(CmdACT, 0, 1, 0)
	pre := r.EarliestIssue(CmdPRE, 0, 0)
	r.Issue(CmdPRE, 0, 0, pre)
	act2 := r.EarliestIssue(CmdACT, 0, 0)
	// Second ACT must respect both tRP after PRE and tRC after first ACT.
	if act2 < pre+sim.Cycle(tm.TRP) || act2 < sim.Cycle(tm.TRC) {
		t.Fatalf("second ACT at %d violates tRP (%d) or tRC (%d)", act2, pre+sim.Cycle(tm.TRP), tm.TRC)
	}
}

func TestTCCDBetweenReads(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	r.Issue(CmdACT, 0, 1, 0)
	rd1 := r.EarliestIssue(CmdRD, 0, 0)
	r.Issue(CmdRD, 0, 1, rd1)
	rd2 := r.EarliestIssue(CmdRD, 0, rd1)
	if rd2 != rd1+sim.Cycle(tm.TCCD) {
		t.Fatalf("back-to-back reads spaced %d, want tCCD = %d", rd2-rd1, tm.TCCD)
	}
}

func TestTRRDBetweenBanks(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	r.Issue(CmdACT, 0, 1, 0)
	act2 := r.EarliestIssue(CmdACT, 1, 0)
	if act2 != sim.Cycle(tm.TRRD) {
		t.Fatalf("cross-bank ACT spacing %d, want tRRD = %d", act2, tm.TRRD)
	}
}

func TestFourActivateWindow(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	var at sim.Cycle
	for b := 0; b < 4; b++ {
		at = r.EarliestIssue(CmdACT, b, at)
		r.Issue(CmdACT, b, 1, at)
	}
	fifth := r.EarliestIssue(CmdACT, 4, at)
	first := sim.Cycle(0)
	if fifth < first+sim.Cycle(tm.TFAW) {
		t.Fatalf("5th ACT at %d violates tFAW window ending %d", fifth, first+sim.Cycle(tm.TFAW))
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	r.Issue(CmdACT, 0, 1, 0)
	wr := r.EarliestIssue(CmdWR, 0, 0)
	wrEnd := r.Issue(CmdWR, 0, 1, wr)
	rd := r.EarliestIssue(CmdRD, 0, wr)
	if rd < wrEnd+sim.Cycle(tm.TWTR) {
		t.Fatalf("read after write at %d, want >= %d (tWTR)", rd, wrEnd+sim.Cycle(tm.TWTR))
	}
}

func TestWriteRecoveryBeforePrecharge(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	r.Issue(CmdACT, 0, 1, 0)
	wr := r.EarliestIssue(CmdWR, 0, 0)
	wrEnd := r.Issue(CmdWR, 0, 1, wr)
	pre := r.EarliestIssue(CmdPRE, 0, wr)
	if pre < wrEnd+sim.Cycle(tm.TWR) {
		t.Fatalf("PRE after write at %d, want >= %d (tWR)", pre, wrEnd+sim.Cycle(tm.TWR))
	}
}

func TestRefreshRequiresAllPrecharged(t *testing.T) {
	r := newTestRank()
	r.Issue(CmdACT, 3, 7, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("REF with open bank did not panic")
		}
	}()
	r.Issue(CmdREF, 0, 0, 1000)
}

func TestRefreshBlocksActivates(t *testing.T) {
	r := newTestRank()
	tm := testTiming()
	end := r.Issue(CmdREF, 0, 0, 100)
	if end != 100+sim.Cycle(tm.TRFC) {
		t.Fatalf("REF end = %d, want %d", end, 100+sim.Cycle(tm.TRFC))
	}
	for b := 0; b < 8; b++ {
		if got := r.EarliestIssue(CmdACT, b, 100); got < end {
			t.Fatalf("bank %d ACT allowed at %d during refresh (ends %d)", b, got, end)
		}
	}
}

func TestProtocolViolationsPanic(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Rank)
	}{
		{"ACT on open bank", func(r *Rank) { r.Issue(CmdACT, 0, 1, 0); r.Issue(CmdACT, 0, 2, 500) }},
		{"PRE on closed bank", func(r *Rank) { r.Issue(CmdPRE, 0, 0, 0) }},
		{"RD on closed bank", func(r *Rank) { r.Issue(CmdRD, 0, 0, 0) }},
		{"WR on closed bank", func(r *Rank) { r.Issue(CmdWR, 0, 0, 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", c.name)
				}
			}()
			c.fn(newTestRank())
		})
	}
}

func TestStatsCounting(t *testing.T) {
	r := newTestRank()
	r.Issue(CmdACT, 0, 1, 0)
	rd := r.EarliestIssue(CmdRD, 0, 0)
	r.Issue(CmdRD, 0, 1, rd)
	wr := r.EarliestIssue(CmdWR, 0, rd)
	r.Issue(CmdWR, 0, 1, wr)
	pre := r.EarliestIssue(CmdPRE, 0, wr)
	r.Issue(CmdPRE, 0, 0, pre)
	s := r.Stats()
	if s.ACTs != 1 || s.Reads != 1 || s.Writes != 1 || s.PREs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusBusy == 0 {
		t.Fatal("bus busy not accounted")
	}
}

func TestAnyBankOpen(t *testing.T) {
	r := newTestRank()
	if r.AnyBankOpen() {
		t.Fatal("fresh rank reports open bank")
	}
	r.Issue(CmdACT, 2, 5, 0)
	if !r.AnyBankOpen() {
		t.Fatal("open bank not reported")
	}
	pre := r.EarliestIssue(CmdPRE, 2, 0)
	r.Issue(CmdPRE, 2, 0, pre)
	if r.AnyBankOpen() {
		t.Fatal("bank still open after PRE")
	}
}

func TestCommandBusSerialisation(t *testing.T) {
	r := newTestRank()
	r.Issue(CmdACT, 0, 1, 0)
	// The very next command on the bus cannot issue in the same bus cycle.
	if got := r.EarliestIssue(CmdACT, 1, 0); got < 5 {
		t.Fatalf("second command at %d, want >= 5 (command bus)", got)
	}
}
