// Package dram models the timing behaviour of a DDR3 rank: per-bank state
// machines (precharged / activating / open row), inter-command timing
// constraints (tRCD, tRP, CL, tRAS, tRRD, tFAW, tWTR, ...), the shared
// data bus, and periodic refresh.
//
// The model is command-accurate: the memory controller asks when a command
// could issue, issues it, and the rank updates every downstream constraint.
// Activity counters feed the energy model (internal/energy).
//
// All times are expressed in CPU cycles. DDR parameters are specified in
// memory-bus cycles and scaled by the CPU:bus clock ratio once, at
// construction.
package dram

// Timing holds DDR timing parameters in memory-bus cycles.
type Timing struct {
	CL   int // CAS latency: READ to first data beat
	CWL  int // CAS write latency: WRITE to first data beat
	TRCD int // ACTIVATE to READ/WRITE
	TRP  int // PRECHARGE to ACTIVATE
	TRAS int // ACTIVATE to PRECHARGE
	TRC  int // ACTIVATE to ACTIVATE (same bank)
	TBL  int // burst length on the bus (8 beats = 4 cycles in DDR)
	TCCD int // column command to column command
	TRTP int // READ to PRECHARGE
	TWR  int // end of write burst to PRECHARGE (write recovery)
	TWTR int // end of write burst to READ (same rank)
	TRTW int // READ command to WRITE command spacing
	TRRD int // ACTIVATE to ACTIVATE (different banks)
	TFAW int // four-activate window
	TRFC int // refresh cycle time
	TREF int // refresh interval (tREFI)
}

// DDR3_1600 returns JEDEC DDR3-1600K (11-11-11) timing in bus cycles
// (tCK = 1.25 ns), with 4 Gb-device refresh timing.
func DDR3_1600() Timing {
	return Timing{
		CL:   11,
		CWL:  8,
		TRCD: 11,
		TRP:  11,
		TRAS: 28,
		TRC:  39,
		TBL:  4,
		TCCD: 4,
		TRTP: 6,
		TWR:  12,
		TWTR: 6,
		TRTW: 7, // CL - CWL + TBL + 2*(bus turnaround)
		TRRD: 5,
		TFAW: 24,
		TRFC: 208,  // 260 ns for a 4 Gb device
		TREF: 6240, // 7.8 us
	}
}

// DDR3_1066 returns JEDEC DDR3-1066F (7-7-7) timing in bus cycles
// (tCK = 1.875 ns).
func DDR3_1066() Timing {
	return Timing{
		CL: 7, CWL: 6, TRCD: 7, TRP: 7, TRAS: 20, TRC: 27,
		TBL: 4, TCCD: 4, TRTP: 4, TWR: 8, TWTR: 4, TRTW: 6,
		TRRD: 4, TFAW: 20, TRFC: 139, TREF: 4160,
	}
}

// DDR3_1333 returns JEDEC DDR3-1333H (9-9-9) timing in bus cycles
// (tCK = 1.5 ns).
func DDR3_1333() Timing {
	return Timing{
		CL: 9, CWL: 7, TRCD: 9, TRP: 9, TRAS: 24, TRC: 33,
		TBL: 4, TCCD: 4, TRTP: 5, TWR: 10, TWTR: 5, TRTW: 7,
		TRRD: 4, TFAW: 20, TRFC: 174, TREF: 5200,
	}
}

// DDR3_1866 returns JEDEC DDR3-1866L (13-13-13) timing in bus cycles
// (tCK = 1.071 ns).
func DDR3_1866() Timing {
	return Timing{
		CL: 13, CWL: 9, TRCD: 13, TRP: 13, TRAS: 32, TRC: 45,
		TBL: 4, TCCD: 4, TRTP: 7, TWR: 14, TWTR: 7, TRTW: 8,
		TRRD: 5, TFAW: 26, TRFC: 243, TREF: 7283,
	}
}

// ReadDataCycles returns the time from RD issue to the end of the data
// burst (CAS latency plus burst length), in the Timing's own unit —
// exactly the interval Rank.Issue reports for a CmdRD. The latency
// attribution tests use it to pin the data_transfer span of an
// uncontended read.
func (t Timing) ReadDataCycles() int { return t.CL + t.TBL }

// Scaled returns the timing with every parameter multiplied by ratio —
// used to convert bus cycles to CPU cycles (ratio 5 for a 4 GHz core with
// an 800 MHz DDR3-1600 bus).
func (t Timing) Scaled(ratio int) Timing {
	return Timing{
		CL:   t.CL * ratio,
		CWL:  t.CWL * ratio,
		TRCD: t.TRCD * ratio,
		TRP:  t.TRP * ratio,
		TRAS: t.TRAS * ratio,
		TRC:  t.TRC * ratio,
		TBL:  t.TBL * ratio,
		TCCD: t.TCCD * ratio,
		TRTP: t.TRTP * ratio,
		TWR:  t.TWR * ratio,
		TWTR: t.TWTR * ratio,
		TRTW: t.TRTW * ratio,
		TRRD: t.TRRD * ratio,
		TFAW: t.TFAW * ratio,
		TRFC: t.TRFC * ratio,
		TREF: t.TREF * ratio,
	}
}
