package gemm

import (
	"testing"

	"gsdram/internal/cpu"
	"gsdram/internal/machine"
)

func drainSpMV(t *testing.T, s cpu.Stream) (gathers int) {
	t.Helper()
	n := 0
	for {
		op, ok := s.Next()
		if !ok {
			return gathers
		}
		if op.Kind == cpu.OpGatherV {
			gathers++
		}
		n++
		if n > 1<<24 {
			t.Fatal("stream did not terminate")
		}
	}
}

// TestSpMVChecksumAcrossVariants checks every (layout, access path)
// combination computes the identical y vector sum, matching the
// reference dot products.
func TestSpMVChecksumAcrossVariants(t *testing.T) {
	const rows, cols, nnz = 64, 512, 16
	const seed = 11
	var want uint64
	for _, gs := range []bool{false, true} {
		for _, gatherv := range []bool{false, true} {
			mach, err := machine.Default()
			if err != nil {
				t.Fatal(err)
			}
			sp, err := NewSpMV(mach, rows, cols, nnz, seed, gs)
			if err != nil {
				t.Fatal(err)
			}
			var res SpMVResult
			s, err := sp.Stream(gatherv, &res)
			if err != nil {
				t.Fatal(err)
			}
			gathers := drainSpMV(t, s)
			if ref := sp.Reference(); res.YSum != ref {
				t.Errorf("gs=%v gatherv=%v: YSum %d, want %d", gs, gatherv, res.YSum, ref)
			}
			if res.NNZ != rows*nnz {
				t.Errorf("gs=%v gatherv=%v: NNZ %d, want %d", gs, gatherv, res.NNZ, rows*nnz)
			}
			if gatherv && gathers != rows {
				t.Errorf("gatherv variant emitted %d gathers, want one per row (%d)", gathers, rows)
			}
			if !gatherv && gathers != 0 {
				t.Errorf("scalar variant emitted %d gathers", gathers)
			}
			if want == 0 {
				want = res.YSum
			} else if res.YSum != want {
				t.Errorf("gs=%v gatherv=%v: YSum %d differs from first variant %d", gs, gatherv, res.YSum, want)
			}
		}
	}
}

func TestSpMVRejectsBadArgs(t *testing.T) {
	mach, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSpMV(mach, 63, 512, 16, 1, false); err == nil {
		t.Error("non-multiple-of-8 rows accepted")
	}
	if _, err := NewSpMV(mach, 64, 100, 16, 1, false); err == nil {
		t.Error("non-multiple-of-8 cols accepted")
	}
	if _, err := NewSpMV(mach, 64, 512, 0, 1, false); err == nil {
		t.Error("zero nnzPerRow accepted")
	}
}
