// Package gemm implements the paper's General Matrix-Matrix multiplication
// evaluation (§5.2, Figure 13). Square float64 matrices are multiplied
// with four implementations:
//
//   - Naive: non-tiled scalar triple loop over row-major matrices — the
//     normalisation baseline of Figure 13.
//   - TiledGather: the tiled SIMD version the paper describes, where
//     "the software must gather the values of a column into a SIMD
//     register": B is stored in 8x8 blocks, and each SIMD multiply first
//     assembles a column pair with scalar loads and a pack instruction.
//   - TiledPacked: a BLAS-style ablation that transposes each B tile into
//     a packed buffer once and streams SIMD from it — the other way
//     heavily-optimised libraries amortise the software gather.
//   - GSDRAM: B's blocks live in shuffled (pattmalloc) pages; a pattload
//     with pattern 7 fetches an entire block column as one cache line, so
//     SIMD needs no software gather at all (the paper's mechanism).
//
// Every implementation runs functionally against machine memory (results
// are verified against a plain Go matmul) while a fastsim model accounts
// cycles, instructions and cache/DRAM behaviour.
package gemm

import (
	"fmt"
	"math"

	"gsdram/internal/addrmap"
	"gsdram/internal/fastsim"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/sim"
)

// BlockDim is the GS-DRAM block granularity: 8x8 float64 blocks, so that
// one block column is a stride-8 gather (pattern 7) within 8 cache lines.
const BlockDim = 8

// ColPattern gathers one block column: stride 8 words.
const ColPattern gsdram.Pattern = 7

// Variant selects a GEMM implementation.
type Variant int

const (
	// Naive is the non-tiled scalar baseline.
	Naive Variant = iota
	// TiledGather is tiled SIMD with per-use software gather of B columns.
	TiledGather
	// TiledPacked is tiled SIMD with per-tile transpose packing of B.
	TiledPacked
	// GSDRAM is tiled SIMD with pattload-gathered B columns.
	GSDRAM
)

func (v Variant) String() string {
	switch v {
	case Naive:
		return "Non-tiled"
	case TiledGather:
		return "Tiled+SW-gather"
	case TiledPacked:
		return "Tiled+packing"
	case GSDRAM:
		return "GS-DRAM"
	default:
		return "unknown"
	}
}

// Result reports one GEMM run.
type Result struct {
	Variant  Variant
	N        int
	TileSize int // 0 for Naive
	Stats    fastsim.Stats
}

// Workload holds the operand matrices in machine memory.
type Workload struct {
	mach *machine.Machine
	n    int

	baseA addrmap.Addr // row-major
	baseC addrmap.Addr // row-major
	baseB addrmap.Addr // row-major (Naive)
	// baseBBlocked is B in 8x8-blocked layout; allocated unshuffled for
	// the tiled variants and pattmalloc'd (shuffled, pattern 7) for
	// GS-DRAM.
	baseBBlocked   addrmap.Addr
	baseBBlockedGS addrmap.Addr
}

// NewWorkload allocates and fills A and B with deterministic values.
// n must be a positive multiple of BlockDim.
func NewWorkload(mach *machine.Machine, n int, seed uint64) (*Workload, error) {
	if n <= 0 || n%BlockDim != 0 {
		return nil, fmt.Errorf("gemm: n must be a positive multiple of %d, got %d", BlockDim, n)
	}
	w := &Workload{mach: mach, n: n}
	bytes := n * n * 8
	var err error
	if w.baseA, err = mach.AS.Malloc(bytes); err != nil {
		return nil, err
	}
	if w.baseC, err = mach.AS.Malloc(bytes); err != nil {
		return nil, err
	}
	if w.baseB, err = mach.AS.Malloc(bytes); err != nil {
		return nil, err
	}
	if w.baseBBlocked, err = mach.AS.Malloc(bytes); err != nil {
		return nil, err
	}
	if w.baseBBlockedGS, err = mach.AS.PattMalloc(bytes, ColPattern); err != nil {
		return nil, err
	}

	rng := sim.NewRand(seed)
	val := func() float64 { return float64(rng.Intn(64)) / 8.0 }
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a, b := val(), val()
			if err := w.writeF(w.addrA(i, j), a); err != nil {
				return nil, err
			}
			for _, addr := range []addrmap.Addr{w.addrBNaive(i, j), w.addrBBlocked(i, j, false), w.addrBBlocked(i, j, true)} {
				if err := w.writeF(addr, b); err != nil {
					return nil, err
				}
			}
		}
	}
	return w, nil
}

// N returns the matrix dimension.
func (w *Workload) N() int { return w.n }

func (w *Workload) writeF(a addrmap.Addr, v float64) error {
	return w.mach.WriteWord(a, math.Float64bits(v))
}

func (w *Workload) readF(a addrmap.Addr) float64 {
	bits, err := w.mach.ReadWord(a)
	if err != nil {
		panic(fmt.Sprintf("gemm: functional read failed: %v", err))
	}
	return math.Float64frombits(bits)
}

func (w *Workload) addrA(i, k int) addrmap.Addr {
	return w.baseA + addrmap.Addr((i*w.n+k)*8)
}

func (w *Workload) addrC(i, j int) addrmap.Addr {
	return w.baseC + addrmap.Addr((i*w.n+j)*8)
}

func (w *Workload) addrBNaive(k, j int) addrmap.Addr {
	return w.baseB + addrmap.Addr((k*w.n+j)*8)
}

// addrBBlocked returns the address of B[k][j] in the 8x8-blocked layout.
func (w *Workload) addrBBlocked(k, j int, gs bool) addrmap.Addr {
	base := w.baseBBlocked
	if gs {
		base = w.baseBBlockedGS
	}
	blocks := w.n / BlockDim
	block := (k/BlockDim)*blocks + j/BlockDim
	word := (k%BlockDim)*BlockDim + j%BlockDim
	return base + addrmap.Addr((block*BlockDim*BlockDim+word)*8)
}

// gatherLineB returns the pattload line address that gathers the block
// column {B[k0..k0+7][j]} (k0 = k &^ 7) in the GS layout: the block base
// plus (j mod 8) cache lines, per the pattern-7 closed form.
func (w *Workload) gatherLineB(k, j int) addrmap.Addr {
	blockBase := w.addrBBlocked(k&^7, j-j%BlockDim, true)
	return blockBase + addrmap.Addr((j%BlockDim)*64)
}

// Reference computes C = A x B in plain Go for verification.
func (w *Workload) Reference() [][]float64 {
	n := w.n
	a := make([][]float64, n)
	b := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = w.readF(w.addrA(i, j))
			b[i][j] = w.readF(w.addrBNaive(i, j))
		}
	}
	c := make([][]float64, n)
	for i := 0; i < n; i++ {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	return c
}

// ReadC returns C[i][j] from machine memory after a run.
func (w *Workload) ReadC(i, j int) float64 { return w.readF(w.addrC(i, j)) }

// loadOperands reads A and B into Go slices once per run; the values are
// identical in every B layout, so the functional inner loops can use the
// slices while the timing model sees the layout-specific addresses.
func (w *Workload) loadOperands() (a, b [][]float64) {
	n := w.n
	a = make([][]float64, n)
	b = make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = w.readF(w.addrA(i, j))
			b[i][j] = w.readF(w.addrBNaive(i, j))
		}
	}
	return a, b
}

// TileSizes are the candidate tile sizes for the "best tiled" search.
var TileSizes = []int{16, 32, 64}

// Run executes a variant and returns its result. For tiled variants,
// tile selects the tile size (must be a multiple of BlockDim dividing n);
// tile <= 0 selects the best (fastest) candidate from TileSizes.
func (w *Workload) Run(v Variant, tile int) (Result, error) {
	switch v {
	case Naive:
		return w.runOnce(v, 0)
	case TiledGather, TiledPacked, GSDRAM:
		if tile > 0 {
			return w.runOnce(v, tile)
		}
		best := Result{}
		found := false
		for _, t := range TileSizes {
			if t > w.n || w.n%t != 0 {
				continue
			}
			r, err := w.runOnce(v, t)
			if err != nil {
				return Result{}, err
			}
			if !found || r.Stats.Cycles < best.Stats.Cycles {
				best = r
				found = true
			}
		}
		if !found {
			// n smaller than every candidate: one tile covering the matrix.
			return w.runOnce(v, w.n)
		}
		return best, nil
	default:
		return Result{}, fmt.Errorf("gemm: unknown variant %d", v)
	}
}

func (w *Workload) runOnce(v Variant, tile int) (Result, error) {
	if v != Naive {
		if tile%BlockDim != 0 || w.n%tile != 0 {
			return Result{}, fmt.Errorf("gemm: tile %d must be a multiple of %d dividing n=%d", tile, BlockDim, w.n)
		}
	}
	model, err := fastsim.New(fastsim.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	switch v {
	case Naive:
		w.runNaive(model)
	case TiledGather:
		w.runTiled(model, tile, false)
	case TiledPacked:
		w.runPacked(model, tile)
	case GSDRAM:
		w.runTiled(model, tile, true)
	}
	return Result{Variant: v, N: w.n, TileSize: tile, Stats: model.Stats()}, nil
}

// runNaive is the scalar triple loop over row-major A and B.
func (w *Workload) runNaive(m *fastsim.Model) {
	n := w.n
	a, b := w.loadOperands()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for k := 0; k < n; k++ {
				m.Access(w.addrA(i, k), 0, false, false)
				m.Access(w.addrBNaive(k, j), 0, false, false)
				m.Compute(2) // FMA + loop
				sum += a[i][k] * b[k][j]
			}
			m.Access(w.addrC(i, j), 0, false, true)
			m.Compute(3) // store path, loop bookkeeping
			if err := w.writeF(w.addrC(i, j), sum); err != nil {
				panic(err)
			}
		}
	}
}

// runTiled is the tiled SIMD loop over blocked B. With gs=false each
// 8-wide column segment is assembled by 8 scalar loads plus pack
// instructions (software gather); with gs=true a single gathered cache
// line (pattern 7) supplies the segment to 4 two-wide pattloads.
func (w *Workload) runTiled(m *fastsim.Model, tile int, gs bool) {
	n := w.n
	a, b := w.loadOperands()
	// Loop order jt, kt, it (the order BLAS-class kernels use): each B
	// tile is brought in once and reused by every row tile before moving
	// on, identical to runPacked's traffic pattern.
	for jt := 0; jt < n; jt += tile {
		for kt := 0; kt < n; kt += tile {
			for it := 0; it < n; it += tile {
				for i := it; i < it+tile; i++ {
					for j := jt; j < jt+tile; j++ {
						sum := w.readF(w.addrC(i, j))
						if kt == 0 {
							sum = 0
						}
						for k := kt; k < kt+tile; k += BlockDim {
							// A segment: 8 elements, one line, 4 xmm loads.
							m.Access(w.addrA(i, k), 0, false, false)
							m.Compute(3)
							if gs {
								// 4 pattloads from one gathered line.
								la := w.gatherLineB(k, j)
								m.Access(la, ColPattern, true, false)
								m.Compute(3)
							} else {
								// Software gather: 8 scalar loads + 4 packs.
								for kk := k; kk < k+BlockDim; kk++ {
									m.Access(w.addrBBlocked(kk, j, false), 0, false, false)
								}
								m.Compute(4)
							}
							m.Compute(6) // 4 SIMD FMAs + loop
							for kk := k; kk < k+BlockDim; kk++ {
								sum += a[i][kk] * b[kk][j]
							}
						}
						m.Access(w.addrC(i, j), 0, false, true)
						m.Compute(3)
						if err := w.writeF(w.addrC(i, j), sum); err != nil {
							panic(err)
						}
					}
				}
			}
		}
	}
}

// runPacked is the BLAS-style ablation: each B tile is transposed into a
// packed, contiguous buffer once per (jt, kt), and the inner loop streams
// SIMD loads from the buffer with no gather.
func (w *Workload) runPacked(m *fastsim.Model, tile int) {
	n := w.n
	// The packed buffer is a real allocation so its cache footprint and
	// conflicts are modelled.
	bufBase, err := w.mach.AS.Malloc(tile * tile * 8)
	if err != nil {
		panic(fmt.Sprintf("gemm: packed buffer allocation failed: %v", err))
	}
	bufAddr := func(k, j int) addrmap.Addr {
		// Transposed: column j contiguous.
		return bufBase + addrmap.Addr(((j%tile)*tile+(k%tile))*8)
	}
	a, b := w.loadOperands()
	for jt := 0; jt < n; jt += tile {
		for kt := 0; kt < n; kt += tile {
			// Pack: transpose the tile.
			for k := kt; k < kt+tile; k++ {
				for j := jt; j < jt+tile; j++ {
					m.Access(w.addrBBlocked(k, j, false), 0, false, false)
					m.Access(bufAddr(k, j), 0, false, true)
					m.Compute(2)
				}
			}
			for it := 0; it < n; it += tile {
				for i := it; i < it+tile; i++ {
					for j := jt; j < jt+tile; j++ {
						sum := w.readF(w.addrC(i, j))
						if kt == 0 {
							sum = 0
						}
						for k := kt; k < kt+tile; k += BlockDim {
							m.Access(w.addrA(i, k), 0, false, false)
							m.Compute(3)
							// 4 xmm loads from the packed column.
							m.Access(bufAddr(k, j), 0, false, false)
							m.Compute(3)
							m.Compute(6)
							for kk := k; kk < k+BlockDim; kk++ {
								sum += a[i][kk] * b[kk][j]
							}
						}
						m.Access(w.addrC(i, j), 0, false, true)
						m.Compute(3)
						if err := w.writeF(w.addrC(i, j), sum); err != nil {
							panic(err)
						}
					}
				}
			}
		}
	}
}
