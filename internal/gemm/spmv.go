package gemm

import (
	"fmt"

	"gsdram/internal/addrmap"
	"gsdram/internal/cpu"
	"gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/sim"
)

// SpMV is a CSR sparse matrix-vector kernel, the indexed counterpart of
// the dense GEMM above: y = A*x where A is a rows x cols matrix with a
// fixed number of random nonzeros per row. The values and column-index
// arrays stream sequentially (one cache line per 8 nonzeros), but the
// x-vector accesses are indexed by the column array — the canonical
// gather that stride-only GS-DRAM patterns cannot express. The matrix
// is rectangular (cols >> rows * nnzPerRow in the benchmark setup) so x
// is not cache-resident: gatherv bypasses the caches, so its win over
// scalar loads exists only in this regime — with a cache-sized x the
// scalar variant simply hits in L1 and wins.
//
// This workload is deliberately an honest limit case: random column
// indices give gatherv vectors with almost no stride structure, so the
// coalescer's per-line grouping yields mostly default (fallback) bursts
// even on a shuffled x. The gatherv win over scalar loads here comes
// from burst batching and bank-level parallelism, not from pattern
// gathers — the cycle gap between the flat and GS variants should be
// near zero, unlike the dense kernels.

// SpMVResult accumulates the functional outcome; every access variant of
// the same (rows, nnzPerRow, seed) must agree on it.
type SpMVResult struct {
	Rows int
	NNZ  uint64
	// YSum is the sum of all output-vector words (integer arithmetic, so
	// it verifies exactly against Reference).
	YSum uint64
}

// SpMV holds the CSR operands in machine memory.
type SpMV struct {
	mach      *machine.Machine
	rows      int
	cols      int
	nnzPerRow int
	gs        bool

	colIdx []int32 // column index of every nonzero, row-major

	valBase addrmap.Addr // nonzero values, streamed
	colBase addrmap.Addr // column indices, streamed
	xBase   addrmap.Addr // dense input vector, gathered
	yBase   addrmap.Addr // dense output vector
}

// NewSpMV allocates and fills the operands with deterministic values.
// rows and cols must be positive multiples of 8; gs places the x vector
// in shuffled (pattmalloc) pages so gatherv may use pattern bursts where
// the index vector happens to be stride-structured.
func NewSpMV(mach *machine.Machine, rows, cols, nnzPerRow int, seed uint64, gs bool) (*SpMV, error) {
	if rows <= 0 || rows%8 != 0 || cols <= 0 || cols%8 != 0 {
		return nil, fmt.Errorf("gemm: spmv rows (%d) and cols (%d) must be positive multiples of 8", rows, cols)
	}
	if nnzPerRow <= 0 {
		return nil, fmt.Errorf("gemm: spmv nnzPerRow must be positive, got %d", nnzPerRow)
	}
	s := &SpMV{mach: mach, rows: rows, cols: cols, nnzPerRow: nnzPerRow, gs: gs}
	nnz := rows * nnzPerRow
	var err error
	if s.valBase, err = mach.AS.Malloc(nnz * 8); err != nil {
		return nil, err
	}
	if s.colBase, err = mach.AS.Malloc(nnz * 8); err != nil {
		return nil, err
	}
	if gs {
		s.xBase, err = mach.AS.PattMalloc(cols*8, ColPattern)
	} else {
		s.xBase, err = mach.AS.Malloc(cols * 8)
	}
	if err != nil {
		return nil, err
	}
	if s.yBase, err = mach.AS.Malloc(rows * 8); err != nil {
		return nil, err
	}

	rng := sim.NewRand(seed)
	s.colIdx = make([]int32, nnz)
	for k := range s.colIdx {
		s.colIdx[k] = int32(rng.Intn(cols))
		if err := mach.WriteWord(s.valAddr(k), uint64(1+k%17)); err != nil {
			return nil, err
		}
		if err := mach.WriteWord(s.colAddr(k), uint64(s.colIdx[k])); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cols; i++ {
		if err := mach.WriteWord(s.xAddr(i), uint64(3*i+1)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Rows returns the output dimension.
func (s *SpMV) Rows() int { return s.rows }

// Cols returns the input (x vector) dimension.
func (s *SpMV) Cols() int { return s.cols }

func (s *SpMV) valAddr(k int) addrmap.Addr { return s.valBase + addrmap.Addr(k*8) }
func (s *SpMV) colAddr(k int) addrmap.Addr { return s.colBase + addrmap.Addr(k*8) }
func (s *SpMV) xAddr(i int) addrmap.Addr   { return s.xBase + addrmap.Addr(i*8) }
func (s *SpMV) yAddr(r int) addrmap.Addr   { return s.yBase + addrmap.Addr(r*8) }

func (s *SpMV) readWord(a addrmap.Addr) uint64 {
	v, err := s.mach.ReadWord(a)
	if err != nil {
		panic(fmt.Sprintf("gemm: spmv functional read failed: %v", err))
	}
	return v
}

// Stream returns the instruction stream of one full y = A*x. With
// gatherv each row's x accesses issue as one indexed gather; without,
// each is a separate scalar load — the per-element fallback cost model.
func (s *SpMV) Stream(gatherv bool, res *SpMVResult) (cpu.Stream, error) {
	if res == nil {
		res = &SpMVResult{}
	}
	res.Rows = s.rows
	alt := gsdram.Pattern(0)
	if s.gs {
		alt = ColPattern
	}
	row := 0
	var pending []cpu.Op

	emitRow := func(r int) {
		start := r * s.nnzPerRow
		// Structure streaming: vals and colidx are sequential; charge one
		// load per cache line (8 words) of each.
		for k := start; k < start+s.nnzPerRow; k += 8 {
			pending = append(pending,
				cpu.Load(s.valAddr(k), 0x4000),
				cpu.Load(s.colAddr(k), 0x4001),
			)
		}
		// x gather: indexed by the row's column entries.
		addrs := make([]addrmap.Addr, s.nnzPerRow)
		var y uint64
		for i := 0; i < s.nnzPerRow; i++ {
			k := start + i
			c := int(s.colIdx[k])
			addrs[i] = s.xAddr(c)
			y += s.readWord(s.valAddr(k)) * s.readWord(s.xAddr(c))
		}
		if gatherv {
			pending = append(pending, cpu.GatherV(addrs, s.gs, alt, 0x4100))
		} else {
			for _, a := range addrs {
				op := cpu.Load(a, 0x4100)
				op.Shuffled = s.gs
				op.AltPattern = alt
				pending = append(pending, op)
			}
		}
		pending = append(pending,
			cpu.Compute(2*s.nnzPerRow), // FMAs + loop
			cpu.Store(s.yAddr(r), 0x4200),
		)
		if err := s.mach.WriteWord(s.yAddr(r), y); err != nil {
			panic(err)
		}
		res.NNZ += uint64(s.nnzPerRow)
		res.YSum += y
	}

	return cpu.FuncStream(func() (cpu.Op, bool) {
		for len(pending) == 0 {
			if row >= s.rows {
				return cpu.Op{}, false
			}
			emitRow(row)
			row++
		}
		op := pending[0]
		pending = pending[1:]
		return op, true
	}), nil
}

// Reference computes the expected YSum in plain Go for verification.
func (s *SpMV) Reference() uint64 {
	var sum uint64
	for r := 0; r < s.rows; r++ {
		var y uint64
		for i := 0; i < s.nnzPerRow; i++ {
			k := r*s.nnzPerRow + i
			y += uint64(1+k%17) * uint64(3*int(s.colIdx[k])+1)
		}
		sum += y
	}
	return sum
}
