package gemm

import (
	"math"
	"testing"

	"gsdram/internal/machine"
)

func newWorkload(t *testing.T, n int) *Workload {
	t.Helper()
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload(m, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorkloadValidation(t *testing.T) {
	m, err := machine.Default()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkload(m, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewWorkload(m, 12, 1); err == nil {
		t.Error("n=12 (not multiple of 8) accepted")
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		Naive: "Non-tiled", TiledGather: "Tiled+SW-gather",
		TiledPacked: "Tiled+packing", GSDRAM: "GS-DRAM", Variant(9): "unknown",
	}
	for v, s := range names {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
}

func TestGatherLineBMatchesMachine(t *testing.T) {
	w := newWorkload(t, 32)
	for _, tc := range []struct{ k, j int }{{0, 0}, {5, 3}, {8, 17}, {24, 31}, {16, 9}} {
		want, _, err := w.mach.GatherAddr(w.addrBBlocked(tc.k, tc.j, true), ColPattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.gatherLineB(tc.k, tc.j); got != want {
			t.Fatalf("gatherLineB(%d,%d) = %#x, want %#x", tc.k, tc.j, uint64(got), uint64(want))
		}
	}
}

// checkResult compares machine-resident C against the reference product.
func checkResult(t *testing.T, w *Workload) {
	t.Helper()
	ref := w.Reference()
	for i := 0; i < w.N(); i++ {
		for j := 0; j < w.N(); j++ {
			got := w.ReadC(i, j)
			if math.Abs(got-ref[i][j]) > 1e-9*math.Max(1, math.Abs(ref[i][j])) {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, got, ref[i][j])
			}
		}
	}
}

func TestAllVariantsComputeCorrectProduct(t *testing.T) {
	for _, v := range []Variant{Naive, TiledGather, TiledPacked, GSDRAM} {
		w := newWorkload(t, 32)
		if _, err := w.Run(v, 16); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		checkResult(t, w)
	}
}

func TestRunUnknownVariant(t *testing.T) {
	w := newWorkload(t, 16)
	if _, err := w.Run(Variant(42), 0); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestRunBadTile(t *testing.T) {
	w := newWorkload(t, 32)
	if _, err := w.Run(GSDRAM, 12); err == nil {
		t.Error("tile not multiple of 8 accepted")
	}
	if _, err := w.Run(GSDRAM, 24); err == nil {
		t.Error("tile not dividing n accepted")
	}
}

func TestBestTileSearch(t *testing.T) {
	w := newWorkload(t, 64)
	r, err := w.Run(GSDRAM, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.TileSize != 16 && r.TileSize != 32 && r.TileSize != 64 {
		t.Fatalf("best tile = %d, want one of the candidates", r.TileSize)
	}
	checkResult(t, w)
}

func TestTinyMatrixFallsBackToFullTile(t *testing.T) {
	w := newWorkload(t, 8)
	r, err := w.Run(TiledGather, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.TileSize != 8 {
		t.Fatalf("tile = %d, want 8 (whole matrix)", r.TileSize)
	}
	checkResult(t, w)
}

// TestFigure13Shape checks the paper's qualitative result at a small size:
// tiling beats non-tiled, and GS-DRAM beats the software-gather tiled
// version (by eliminating gather instructions) and is at least competitive
// with the packing ablation.
func TestFigure13Shape(t *testing.T) {
	w := newWorkload(t, 64)
	cycles := map[Variant]uint64{}
	for _, v := range []Variant{Naive, TiledGather, TiledPacked, GSDRAM} {
		r, err := w.Run(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		cycles[v] = r.Stats.Cycles
	}
	if cycles[TiledGather] >= cycles[Naive] {
		t.Errorf("tiling did not help: tiled %d vs naive %d", cycles[TiledGather], cycles[Naive])
	}
	if cycles[GSDRAM] >= cycles[TiledGather] {
		t.Errorf("GS-DRAM %d not faster than SW-gather tiled %d", cycles[GSDRAM], cycles[TiledGather])
	}
	if float64(cycles[GSDRAM]) > 1.05*float64(cycles[TiledPacked]) {
		t.Errorf("GS-DRAM %d much slower than packed tiled %d", cycles[GSDRAM], cycles[TiledPacked])
	}
}

func TestGSVariantUsesPatternedLines(t *testing.T) {
	w := newWorkload(t, 32)
	r, err := w.Run(GSDRAM, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The gathered lines are distinct pattern-7 entries; the stats must
	// show far fewer B-side L1 accesses than the software-gather variant.
	rg, err := w.Run(TiledGather, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Instructions >= rg.Stats.Instructions {
		t.Fatalf("GS instructions %d not below SW-gather %d", r.Stats.Instructions, rg.Stats.Instructions)
	}
}
