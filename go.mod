module gsdram

go 1.22
