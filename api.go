// Package gsdram is a from-scratch reproduction of "Gather-Scatter DRAM:
// In-DRAM Address Translation to Improve the Spatial Locality of Non-unit
// Strided Accesses" (Seshadri et al., MICRO 2015).
//
// The package is a facade over the implementation in internal/...:
//
//   - The GS-DRAM mechanism itself (column-ID data shuffling, per-chip
//     column translation logic, gather/scatter, the §6 extensions) —
//     re-exported from internal/gsdram.
//   - A functional machine (pattmalloc address space + GS-DRAM modules
//     holding real data) — re-exported from internal/machine.
//   - A timed system: event-driven in-order cores, pattern-tagged caches,
//     a stride prefetcher, and an FR-FCFS DDR3-1600 memory controller —
//     assembled from internal/cpu, internal/memsys and friends.
//   - The experiment runners that regenerate every table and figure of
//     the paper's evaluation — re-exported from internal/bench.
//
// See README.md for a tour and examples/ for runnable programs.
package gsdram

import (
	"gsdram/internal/addrmap"
	"gsdram/internal/bench"
	core "gsdram/internal/gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/sample"
	"gsdram/internal/telemetry"
)

// ---- The GS-DRAM substrate (paper §3) ----

// Params describes a GS-DRAM(c,s,p) configuration: c chips, s shuffling
// stages, p pattern-ID bits.
type Params = core.Params

// Pattern is a pattern ID carried with each column command.
type Pattern = core.Pattern

// Module is a functional model of a GS-DRAM rank: it stores data exactly
// as the shuffled chips would and serves gathers/scatters for any
// (column, pattern) combination.
type Module = core.Module

// Geometry is a module's banks x rows x columns organisation.
type Geometry = core.Geometry

// ShuffleFunc programs the controller's shuffling stages (paper §6.1).
type ShuffleFunc = core.ShuffleFunc

// Mapping selects a cache-line-to-chip mapping for conflict analysis.
type Mapping = core.Mapping

// ECCModule is a GS-DRAM module with a SEC-DED ECC chip that supports
// intra-chip column translation (paper §6.3).
type ECCModule = core.ECCModule

// TiledChip models per-MAT intra-chip column translation (paper §6.3).
type TiledChip = core.TiledChip

// DefaultPattern is the pattern ID of an ordinary cache-line access.
const DefaultPattern = core.DefaultPattern

// Configurations and mappings used throughout the paper.
var (
	// GS844 is GS-DRAM(8,3,3), the paper's evaluated configuration.
	GS844 = core.GS844
	// GS422 is GS-DRAM(4,2,2), the paper's worked example.
	GS422 = core.GS422
)

// Mapping schemes for chip-conflict analysis (paper §3.1/§3.2).
const (
	SimpleMapping   = core.SimpleMapping
	ShuffledMapping = core.ShuffledMapping
)

// NewModule returns a zero-filled module with the default shuffling
// function. It panics on invalid parameters.
func NewModule(p Params, g Geometry) *Module { return core.NewModule(p, g) }

// NewModuleFunc returns a module with a programmable shuffling function
// (paper §6.1); nil selects the default column-LSB function.
func NewModuleFunc(p Params, g Geometry, fn ShuffleFunc) (*Module, error) {
	return core.NewModuleFunc(p, g, fn)
}

// NewECCModule returns an ECC-protected module (paper §6.3).
func NewECCModule(p Params, g Geometry) (*ECCModule, error) { return core.NewECCModule(p, g) }

// DefaultShuffle, MaskedShuffle and XORShuffle build shuffling functions
// (paper §3.2 and §6.1).
func DefaultShuffle(stages int) ShuffleFunc      { return core.DefaultShuffle(stages) }
func MaskedShuffle(stages, mask int) ShuffleFunc { return core.MaskedShuffle(stages, mask) }
func XORShuffle(groups []int) ShuffleFunc        { return core.XORShuffle(groups) }

// StrideSet returns the logical word indices of a strided gather, for use
// with conflict analysis.
func StrideSet(start, stride, count int) []int { return core.StrideSet(start, stride, count) }

// ---- The functional machine (paper §4.3's software view) ----

// Addr is a simulated physical byte address.
type Addr = addrmap.Addr

// Machine bundles a pattmalloc address space with GS-DRAM modules holding
// real data: allocate with Machine.AS.PattMalloc, move data with
// ReadWord/WriteWord/ReadLine/WriteLine, and compute pattload addresses
// with GatherAddr.
type Machine = machine.Machine

// NewMachine returns a machine with the paper's Table 1 organisation:
// one DDR3-1600 channel, one rank of 8 banks, GS-DRAM(8,3,3).
func NewMachine() (*Machine, error) { return machine.Default() }

// ---- Experiments (paper §5) ----

// Options scales the experiment suite.
type Options = bench.Options

// DefaultOptions returns the default experiment scale; QuickOptions a
// reduced scale for smoke tests.
func DefaultOptions() Options { return bench.DefaultOptions() }
func QuickOptions() Options   { return bench.QuickOptions() }

// SetNoInline disables (true) the cores' event-horizon fast path for every
// subsequently started experiment, forcing the pure event-driven execution.
// Results are bit-identical either way; the switch exists as an escape
// hatch and for equivalence testing (gsbench -noinline).
func SetNoInline(v bool) { bench.SetNoInline(v) }

// TelemetryCapture collects telemetry — per-run metrics registries, the
// epoch time-series, DRAM command and core stall-phase traces — for one
// batch of experiment runs. Set one on Options.Capture, run the batch,
// then call Drain for the captured runs. Captures are per-batch, not
// session-global: concurrent batches with independent captures record
// independently, with no cross-talk and no serialization. Telemetry
// observes without mutating, so results are bit-identical either way;
// it is off by default (nil Options.Capture) because the capture
// buffers cost memory.
type TelemetryCapture = bench.Capture

// NewTelemetryCapture returns an empty capture context. epochCycles is
// the time-series sampling interval (0 = the default 100k cycles).
func NewTelemetryCapture(epochCycles uint64) *TelemetryCapture { return bench.NewCapture(epochCycles) }

// TelemetryRun is one run's captured telemetry (see internal/telemetry).
type TelemetryRun = telemetry.Run

// Fig9Result and Fig10Result are the structured results of the headline
// analytics experiments, exported so tools (gsbench -json) can summarise
// them without reaching into internal packages. PattBitsResult is the
// §3.5 pattern-bit sweep.
type (
	Fig9Result     = bench.Fig9Result
	Fig10Result    = bench.Fig10Result
	PattBitsResult = bench.PatternSweepResult
)

// ---- Sampled simulation (DESIGN.md §5.7) ----

// SampleConfig parameterises SMARTS-style interval sampling: set it on
// Options.Sample and the sampling-capable runners (Figure 9, Figure 10,
// the pattern sweep) fast-forward most instructions functionally and
// measure short detailed windows, returning extrapolated estimates with
// confidence intervals (gsbench -sample).
type SampleConfig = sample.Config

// SampledResult is one run's sampled estimate: CPI, extrapolated cycles
// and energy, and the Student-t confidence interval half-widths.
type SampledResult = sample.Result

// SampledEntry labels one run's sampled estimate inside an experiment
// result (the `sampled` section of gsbench -json output).
type SampledEntry = bench.SampledEntry

// The experiment runners regenerate the paper's tables and figures. Each
// returns structured results with a Table() (or similar) renderer.
var (
	RunFig9     = bench.RunFig9
	RunAuto     = bench.RunAutoGather
	RunSchedule = bench.RunSchedulerAblation
	RunFig10    = bench.RunFig10
	RunFig11    = bench.RunFig11
	RunFig12    = bench.RunFig12
	RunFig13    = bench.RunFig13
	RunKVStore  = bench.RunKVStore
	RunGraph    = bench.RunGraph
	RunChannels = bench.RunChannels
	RunImpulse  = bench.RunImpulse
	RunPattBits = bench.RunPatternSweep
	RunStoreBuf = bench.RunStoreBuffer
	RunPixels   = bench.RunPixels
	Table1      = bench.Table1
	Fig7        = bench.Fig7
	AblationMap = bench.AblationShuffle
	AblationECC = bench.AblationECC
)
