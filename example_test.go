package gsdram_test

import (
	"fmt"
	"log"

	"gsdram"
)

// Example reproduces the paper's Figure 1 scenario: a table of 8-field
// tuples where one query wants a whole tuple and another wants one field
// of many tuples — both served by single cache-line reads.
func Example() {
	m, err := gsdram.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	// pattmalloc(size, SHUFFLE, 7): alternate pattern 7 = stride 8 words.
	base, err := m.AS.PattMalloc(8*64, 7)
	if err != nil {
		log.Fatal(err)
	}
	for tup := 0; tup < 8; tup++ {
		for f := 0; f < 8; f++ {
			if err := m.WriteWord(base+gsdram.Addr(tup*64+f*8), uint64(tup*10+f)); err != nil {
				log.Fatal(err)
			}
		}
	}

	line := make([]uint64, 8)

	// Transaction view: one tuple, one default-pattern read.
	if err := m.ReadLine(base+3*64, gsdram.DefaultPattern, line); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuple 3: ", line)

	// Analytics view: field 0 of all 8 tuples, ONE pattern-7 read.
	la, _, err := m.GatherAddr(base, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.ReadLine(la, 7, line); err != nil {
		log.Fatal(err)
	}
	fmt.Println("field 0: ", line)

	// Output:
	// tuple 3:  [30 31 32 33 34 35 36 37]
	// field 0:  [0 10 20 30 40 50 60 70]
}

// ExampleParams_GatherIndices reproduces the paper's Figure 7 rows for
// GS-DRAM(4,2,2).
func ExampleParams_GatherIndices() {
	p := gsdram.GS422
	fmt.Println("pattern 0, col 0:", p.GatherIndices(0, 0))
	fmt.Println("pattern 1, col 0:", p.GatherIndices(1, 0))
	fmt.Println("pattern 3, col 0:", p.GatherIndices(3, 0))
	// Output:
	// pattern 0, col 0: [0 1 2 3]
	// pattern 1, col 0: [0 2 4 6]
	// pattern 3, col 0: [0 4 8 12]
}

// ExampleParams_CTL shows the two-gate column translation of Figure 5:
// chip column = (chipID AND pattern) XOR column.
func ExampleParams_CTL() {
	p := gsdram.GS844
	for chip := 0; chip < 4; chip++ {
		fmt.Printf("chip %d reads column %d\n", chip, p.CTL(chip, 7, 0))
	}
	// Output:
	// chip 0 reads column 0
	// chip 1 reads column 1
	// chip 2 reads column 2
	// chip 3 reads column 3
}

// ExampleParams_ReadsNeeded quantifies Challenge 1 (Figure 3): gathering
// the first field of eight tuples takes eight READs under the simple
// mapping and one under the column-ID shuffle.
func ExampleParams_ReadsNeeded() {
	p := gsdram.GS844
	want := gsdram.StrideSet(0, 8, 8)
	fmt.Println("simple:  ", p.ReadsNeeded(gsdram.SimpleMapping, want))
	fmt.Println("shuffled:", p.ReadsNeeded(gsdram.ShuffledMapping, want))
	// Output:
	// simple:   8
	// shuffled: 1
}

// ExampleNewECCModule shows the §6.3 ECC extension correcting a soft
// error inside a gathered read.
func ExampleNewECCModule() {
	em, err := gsdram.NewECCModule(gsdram.GS844, gsdram.Geometry{Banks: 1, Rows: 1, Cols: 8})
	if err != nil {
		log.Fatal(err)
	}
	if err := em.WriteLine(0, 0, 0, gsdram.DefaultPattern, true, []uint64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		log.Fatal(err)
	}
	if err := em.InjectBitFlip(0, 0, 0, 0, 5); err != nil {
		log.Fatal(err)
	}
	dst := make([]uint64, 8)
	results, err := em.ReadLine(0, 0, 0, gsdram.DefaultPattern, true, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("data:", dst[0], "status:", results[0])
	// Output:
	// data: 1 status: corrected
}
