// HTAP database demo (paper §5.1): the same table is served as a row
// store, a column store, and a GS-DRAM store, and each layout runs a
// transaction batch, an analytics query, and the combined HTAP workload
// on the simulated two-core system.
//
// Run with: go run ./examples/imdb [-tuples N]
package main

import (
	"flag"
	"fmt"
	"log"

	"gsdram"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/query"
)

func main() {
	tuples := flag.Int("tuples", 32768, "table size in tuples")
	flag.Parse()

	opts := gsdram.QuickOptions()
	opts.Tuples = *tuples
	opts.Txns = 2000

	fmt.Println(gsdram.Table1())

	f9, err := gsdram.RunFig9(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f9.Table())

	f10, err := gsdram.RunFig10(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f10.Table())

	opts.Tuples = max(*tuples, 65536) // HTAP needs a DRAM-resident table
	f11, err := gsdram.RunFig11(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f11.AnalyticsTable())
	fmt.Println(f11.ThroughputTable())

	fmt.Println("GS-DRAM provides the row store's transactions and the column store's analytics")
	fmt.Println("from one physical layout — the paper's \"best of both\" result.")
	fmt.Println()
	queryDemo(*tuples)
}

// queryDemo runs real SQL-ish queries through the layout-aware engine on
// a GS-DRAM table.
func queryDemo(tuples int) {
	mach, err := machine.Default()
	if err != nil {
		log.Fatal(err)
	}
	db, err := imdb.New(mach, imdb.GSStore, tuples)
	if err != nil {
		log.Fatal(err)
	}
	eng := query.NewEngine(db)

	q := query.Query{
		Aggregates: []query.Agg{{Kind: query.Sum, Field: 1}, {Kind: query.Count}},
		Filter:     &query.Filter{Field: 0, Op: query.Gt, Value: uint64(tuples) * 5},
	}
	plan, err := eng.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	res, err := plan.Execute()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v\n  -> SUM = %d, COUNT = %d over %d matching rows (gathered scan, pattern 7)\n",
		q, res.Values[0], res.Values[1], res.Rows)

	vals, _, err := eng.Lookup(3, []int{0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SELECT f0,f1,f2 FROM t WHERE id=3 -> %v (single tuple line, pattern 0)\n", vals)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
