// GEMM demo (paper §5.2): multiply two matrices with the non-tiled,
// best-tiled and GS-DRAM SIMD implementations, verify all three produce
// the same product, and print the Figure 13 comparison.
//
// Run with: go run ./examples/gemm [-n 128]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"gsdram"
	"gsdram/internal/gemm"
	"gsdram/internal/machine"
)

func main() {
	n := flag.Int("n", 128, "matrix dimension (multiple of 8)")
	flag.Parse()

	mach, err := machine.Default()
	if err != nil {
		log.Fatal(err)
	}
	w, err := gemm.NewWorkload(mach, *n, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("C = A x B, %dx%d float64 matrices\n\n", *n, *n)
	var naive uint64
	for _, v := range []gemm.Variant{gemm.Naive, gemm.TiledGather, gemm.TiledPacked, gemm.GSDRAM} {
		r, err := w.Run(v, 0)
		if err != nil {
			log.Fatal(err)
		}
		verify(w)
		if v == gemm.Naive {
			naive = r.Stats.Cycles
		}
		fmt.Printf("%-16s  %12d cycles  (%.3f of non-tiled)  tile=%d  L1 hit rate %.1f%%\n",
			v, r.Stats.Cycles, float64(r.Stats.Cycles)/float64(naive), r.TileSize,
			100*float64(r.Stats.L1Hits)/float64(r.Stats.L1Hits+r.Stats.L1Misses))
	}

	fmt.Println("\nGS-DRAM reads each 8x8 block of B in column-major order with one")
	fmt.Println("pattern-7 gather per block column, so SIMD needs no software gather.")
	_ = gsdram.GS844
}

func verify(w *gemm.Workload) {
	ref := w.Reference()
	for i := 0; i < w.N(); i++ {
		for j := 0; j < w.N(); j++ {
			if math.Abs(w.ReadC(i, j)-ref[i][j]) > 1e-9*math.Max(1, math.Abs(ref[i][j])) {
				log.Fatalf("verification failed at C[%d][%d]", i, j)
			}
		}
	}
}
