// Quickstart: the paper's Figure 1/8 scenario on the public API.
//
// We allocate a table of 8-field tuples in shuffled (pattmalloc) pages,
// then read one field of eight tuples with a SINGLE gathered cache-line
// read (pattern 7) — the operation that costs eight reads on a
// conventional memory system.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gsdram"
)

func main() {
	m, err := gsdram.NewMachine()
	if err != nil {
		log.Fatal(err)
	}

	// pattmalloc(size, SHUFFLE, 7): a table of 16 tuples x 8 fields x 8 B,
	// shuffled, with alternate pattern 7 (stride 8 = one field).
	const tuples = 16
	base, err := m.AS.PattMalloc(tuples*64, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Fill the table: field f of tuple t holds t*100 + f.
	for t := 0; t < tuples; t++ {
		for f := 0; f < 8; f++ {
			addr := base + gsdram.Addr(t*64+f*8)
			if err := m.WriteWord(addr, uint64(t*100+f)); err != nil {
				log.Fatal(err)
			}
		}
	}

	// An ordinary read returns one tuple (pattern 0).
	tuple := make([]uint64, 8)
	if err := m.ReadLine(base+2*64, gsdram.DefaultPattern, tuple); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuple 2 (one default-pattern read):  ", tuple)

	// A pattern-7 read gathers field 5 of tuples 0..7 — still ONE read.
	fieldAddr := base + gsdram.Addr(5*8) // field 5 of tuple 0
	lineAddr, pos, err := m.GatherAddr(fieldAddr, 7)
	if err != nil {
		log.Fatal(err)
	}
	field := make([]uint64, 8)
	if err := m.ReadLine(lineAddr, 7, field); err != nil {
		log.Fatal(err)
	}
	fmt.Println("field 5 of tuples 0-7 (one gathered read):", field, "(tuple 0 at position", pos, ")")

	// The same gather needs 8 reads under the conventional mapping:
	want := gsdram.StrideSet(5, 8, 8)
	fmt.Printf("READs needed for this gather: conventional=%d, GS-DRAM=%d\n",
		gsdram.GS844.ReadsNeeded(gsdram.SimpleMapping, want),
		gsdram.GS844.ReadsNeeded(gsdram.ShuffledMapping, want))
}
