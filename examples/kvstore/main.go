// Key-value store demo (paper §3.5 and §5.3): 8-byte keys and values
// stored as adjacent pairs. Inserts touch one line per pair; with
// GS-DRAM's pattern 1 (stride 2), a single gathered read returns eight
// keys (or eight values), doubling key-scan density.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"gsdram"
	"gsdram/internal/kvstore"
	"gsdram/internal/machine"
)

func main() {
	mach, err := machine.Default()
	if err != nil {
		log.Fatal(err)
	}
	st, err := kvstore.New(mach, 64, true)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 24; i++ {
		if _, err := st.Insert(uint64(1000+i), uint64(9000+i)); err != nil {
			log.Fatal(err)
		}
	}

	keys, err := st.GatherKeys(1) // pairs 8..15
	if err != nil {
		log.Fatal(err)
	}
	vals, err := st.GatherValues(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one pattern-1 read, keys of pairs 8-15:  ", keys)
	fmt.Println("one pattern-1 read, values of pairs 8-15:", vals)

	v, found, _, err := st.Lookup(keys[3])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup(%d) = %d (found=%v)\n", keys[3], v, found)

	// Line-fetch comparison on a larger store.
	r, err := gsdram.RunKVStore(4096, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(r.Table())
}
