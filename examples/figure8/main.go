// Figure 8, executed: the paper's §4.3 code example, before and after the
// GS-DRAM optimisation.
//
//	Before:                          After:
//	  arr = malloc(512*sizeof(Obj))    arr = pattmalloc(512*sizeof(Obj), SHUFFLE, 7)
//	  for i in 0..511:                 for i in 0..511 step 8:
//	    sum += arr[i].field[0]           for j in 0..7:
//	                                       pattload r1, arr[i]+8*j, 7
//	                                       sum += r1
//
// The paper's claim: the original loop touches 512 cache lines; the
// optimised loop touches 64. This program builds both loops against the
// simulated Table 1 system and reports exactly those counts, the
// speedup, and that both sums agree.
//
// Run with: go run ./examples/figure8
package main

import (
	"fmt"
	"log"

	"gsdram/internal/cpu"
	"gsdram/internal/imdb"
	"gsdram/internal/machine"
	"gsdram/internal/memsys"
	"gsdram/internal/sim"
)

const objects = 512 // 512 objects x 8 fields x 8 bytes, as in the paper

func main() {
	before := runLoop(false)
	after := runLoop(true)

	fmt.Printf("before: sum=%d  cache lines from DRAM=%d  cycles=%d\n",
		before.sum, before.lines, before.cycles)
	fmt.Printf("after:  sum=%d  cache lines from DRAM=%d  cycles=%d\n",
		after.sum, after.lines, after.cycles)
	fmt.Printf("\n%dx fewer lines, %.1fx faster — Figure 8's \"one cache line for\n",
		before.lines/after.lines, float64(before.cycles)/float64(after.cycles))
	fmt.Println("eight fields\" annotation, measured.")
	if before.sum != after.sum {
		log.Fatal("sums differ!")
	}
}

type outcome struct {
	sum    uint64
	lines  uint64
	cycles sim.Cycle
}

// runLoop executes the Figure 8 loop over a fresh machine and memory
// system. optimised selects the pattmalloc + pattload version.
func runLoop(optimised bool) outcome {
	mach, err := machine.Default()
	if err != nil {
		log.Fatal(err)
	}
	// The table layouts double as the example's object array: a row store
	// is malloc'd, the GS store is pattmalloc'd with pattern 7.
	layout := imdb.RowStore
	if optimised {
		layout = imdb.GSStore
	}
	db, err := imdb.New(mach, layout, objects)
	if err != nil {
		log.Fatal(err)
	}

	var out outcome
	var ops []cpu.Op
	if !optimised {
		// for (i = 0; i < 512; i++) sum += arr[i].field[0];
		for i := 0; i < objects; i++ {
			v, err := db.ReadField(i, 0)
			if err != nil {
				log.Fatal(err)
			}
			out.sum += v
			ops = append(ops, cpu.Load(db.FieldAddr(i, 0), 0x8), cpu.Compute(2))
		}
	} else {
		// for (i = 0; i < 512; i += 8) for (j = 0; j < 8; j++)
		//     pattload r1, arr[i]+8*j, 7; sum += r1
		for i := 0; i < objects; i += 8 {
			for j := 0; j < 8; j++ {
				v, err := db.ReadField(i+j, 0)
				if err != nil {
					log.Fatal(err)
				}
				out.sum += v
				ops = append(ops,
					cpu.PattLoad(db.GatherLineAddr(i+j, 0), imdb.FieldPattern, 0x8),
					cpu.Compute(2))
			}
		}
	}

	q := &sim.EventQueue{}
	mem, err := memsys.New(memsys.DefaultConfig(1), q)
	if err != nil {
		log.Fatal(err)
	}
	core := cpu.New(0, q, mem, cpu.SliceStream(ops), nil)
	core.Start(0)
	q.Run()

	out.lines = mem.Stats().DRAMReads
	out.cycles = core.Stats().Runtime()
	return out
}
