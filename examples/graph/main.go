// Graph-processing demo (paper §5.3): the same PageRank-style kernel and
// random vertex updates over AoS, SoA and GS-DRAM vertex layouts, plus a
// pixel-channel demo of pattern 2's dual-stride gathers.
//
// Run with: go run ./examples/graph [-vertices N] [-degree D]
package main

import (
	"flag"
	"fmt"
	"log"

	"gsdram"
	"gsdram/internal/machine"
	"gsdram/internal/pixels"
)

func main() {
	vertices := flag.Int("vertices", 16384, "vertex count (multiple of 8)")
	degree := flag.Int("degree", 8, "average out-degree")
	flag.Parse()

	r, err := gsdram.RunGraph(*vertices, *degree, 2000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Table())
	fmt.Println("GS-DRAM tracks SoA on the scan-heavy kernel and AoS on random updates —")
	fmt.Println("the graph-processing analogue of the database result.")
	fmt.Println()

	// Pattern 2 demo: dual-stride channel-pair gathers from a pixel image.
	mach, err := machine.Default()
	if err != nil {
		log.Fatal(err)
	}
	img, err := pixels.New(mach, 16, true)
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < img.N(); p++ {
		for c := 0; c < pixels.NumChannels; c++ {
			if err := img.Set(p, c, uint64(p*100+c)); err != nil {
				log.Fatal(err)
			}
		}
	}
	pg, err := img.GatherPairs(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pattern-2 (dual-stride) gather, one line read:")
	for i, pix := range pg.Pixel {
		fmt.Printf("  pixel %d: R=%d G=%d Depth=%d Stencil=%d\n",
			pix, pg.Values[i][0], pg.Values[i][1], pg.Values[i][2], pg.Values[i][3])
	}
}
