package gsdram_test

import (
	"strings"
	"testing"

	"gsdram"
)

// TestFacadeQuickstart exercises the public API end to end: allocate a
// shuffled table, write tuples, gather a field with one line read.
func TestFacadeQuickstart(t *testing.T) {
	m, err := gsdram.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.AS.PattMalloc(64*64, 7)
	if err != nil {
		t.Fatal(err)
	}
	for tup := 0; tup < 64; tup++ {
		for f := 0; f < 8; f++ {
			if err := m.WriteWord(base+gsdram.Addr(tup*64+f*8), uint64(tup*100+f)); err != nil {
				t.Fatal(err)
			}
		}
	}
	la, pos, err := m.GatherAddr(base+gsdram.Addr(3*8), 7) // field 3 of tuple 0
	if err != nil {
		t.Fatal(err)
	}
	if pos != 0 {
		t.Fatalf("pos = %d", pos)
	}
	line := make([]uint64, 8)
	if err := m.ReadLine(la, 7, line); err != nil {
		t.Fatal(err)
	}
	for i := range line {
		if line[i] != uint64(i*100+3) {
			t.Fatalf("line[%d] = %d, want %d", i, line[i], i*100+3)
		}
	}
}

func TestFacadeModule(t *testing.T) {
	mod := gsdram.NewModule(gsdram.GS422, gsdram.Geometry{Banks: 1, Rows: 1, Cols: 4})
	line := []uint64{10, 11, 12, 13}
	if err := mod.WriteLine(0, 0, 0, gsdram.DefaultPattern, true, line); err != nil {
		t.Fatal(err)
	}
	dst := make([]uint64, 4)
	if _, err := mod.ReadLine(0, 0, 0, gsdram.DefaultPattern, true, dst); err != nil {
		t.Fatal(err)
	}
	for i := range line {
		if dst[i] != line[i] {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestFacadeConflictAnalysis(t *testing.T) {
	set := gsdram.StrideSet(0, 8, 8)
	if got := gsdram.GS844.ReadsNeeded(gsdram.SimpleMapping, set); got != 8 {
		t.Fatalf("simple mapping reads = %d", got)
	}
	if got := gsdram.GS844.ReadsNeeded(gsdram.ShuffledMapping, set); got != 1 {
		t.Fatalf("shuffled mapping reads = %d", got)
	}
}

func TestFacadeShuffleFunctions(t *testing.T) {
	if gsdram.DefaultShuffle(3)(5) != 5 {
		t.Error("default shuffle wrong")
	}
	if gsdram.MaskedShuffle(3, 0b100)(7) != 0b100 {
		t.Error("masked shuffle wrong")
	}
	if gsdram.XORShuffle([]int{1})(1) != 1 {
		t.Error("xor shuffle wrong")
	}
	if _, err := gsdram.NewModuleFunc(gsdram.GS844, gsdram.Geometry{Banks: 1, Rows: 1, Cols: 8}, gsdram.MaskedShuffle(3, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeECC(t *testing.T) {
	em, err := gsdram.NewECCModule(gsdram.GS844, gsdram.Geometry{Banks: 1, Rows: 1, Cols: 8})
	if err != nil {
		t.Fatal(err)
	}
	line := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := em.WriteLine(0, 0, 0, gsdram.DefaultPattern, true, line); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTables(t *testing.T) {
	if out := gsdram.Table1().String(); !strings.Contains(out, "GS-DRAM(8,3,3)") {
		t.Error("Table1 malformed")
	}
	if out := gsdram.Fig7(gsdram.GS422, 4).String(); !strings.Contains(out, "[0 4 8 12]") {
		t.Error("Fig7 malformed")
	}
	if out := gsdram.AblationMap(gsdram.GS844).String(); !strings.Contains(out, "shuffling") {
		t.Error("ablation table malformed")
	}
}

func TestFacadeOptions(t *testing.T) {
	if gsdram.QuickOptions().Tuples >= gsdram.DefaultOptions().Tuples {
		t.Error("quick options not quick")
	}
}
